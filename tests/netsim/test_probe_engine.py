"""Parity tests for the compiled forwarding plane + batched probe engine.

Every optimisation in the probe hot path claims *bit-identity* with the
serial reference implementation. This file holds that claim to account
layer by layer: trie flattening, compiled path resolution, the
vectorised stochastic draws, and the batched probe API. The end-to-end
campaign-level parity check lives in ``tests/core/test_engine_parity.py``.
"""

import random

import numpy as np
import pytest

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.netsim import hosts as hostmod
from repro.netsim.icmp import stochastic_loss, stochastic_loss_np
from repro.netsim.internet import MIN_VECTOR_BATCH
from repro.netsim.routing import Forwarder
from repro.netsim.rtt import (
    HOST_LATENCY_MS,
    path_rtt_ms,
    rtt_draws_for_nonces,
)
from repro.util.hashing import mix_np, splitmix64, splitmix64_np, unit_np

SEED = 13


def _fresh(seed=SEED):
    return SimulatedInternet.from_config(tiny_scenario(seed=seed))


def _reference(monkeypatch, seed=SEED):
    """A bit-identical internet forced onto the legacy serial engine."""
    monkeypatch.setenv("REPRO_REFERENCE_ENGINE", "1")
    net = SimulatedInternet.from_config(tiny_scenario(seed=seed))
    monkeypatch.delenv("REPRO_REFERENCE_ENGINE")
    return net


# -- layer 1: trie flattening ------------------------------------------------


def _interval_lookup(points, addr):
    lo, hi = 0, len(points)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if points[mid][0] <= addr:
            lo = mid
        else:
            hi = mid
    return points[lo][1]


class TestLeafIntervals:
    def test_empty_trie(self):
        assert PrefixTrie().leaf_intervals() == [(0, None)]

    def test_single_prefix(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        points = trie.leaf_intervals()
        assert points == [
            (0, None),
            (10 << 24, "a"),
            (11 << 24, None),
        ]

    def test_nested_prefix_punches_hole(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "outer")
        trie.insert(Prefix.parse("10.1.0.0/16"), "inner")
        points = trie.leaf_intervals()
        base = 10 << 24
        assert points == [
            (0, None),
            (base, "outer"),
            (base + (1 << 16), "inner"),
            (base + (2 << 16), "outer"),
            (11 << 24, None),
        ]

    def test_fuzz_against_trie_lookup(self):
        rng = random.Random(99)
        for _ in range(40):
            trie = PrefixTrie()
            for _ in range(rng.randrange(0, 30)):
                length = rng.randrange(4, 30)
                network = rng.getrandbits(32) & ~((1 << (32 - length)) - 1)
                trie.insert(Prefix(network, length), rng.randrange(1000))
            points = trie.leaf_intervals()
            # Breakpoints are strictly increasing with no no-op runs.
            starts = [p[0] for p in points]
            assert starts == sorted(set(starts))
            probes = [rng.getrandbits(32) for _ in range(64)]
            # Also probe right at the breakpoints and just before them.
            for start, _ in points:
                probes.extend((start, max(0, start - 1)))
            for addr in probes:
                addr &= 0xFFFFFFFF
                hit = trie.lookup(addr)
                expected = None if hit is None else hit[1]
                assert _interval_lookup(points, addr) == expected

    def test_allocation_map_delegates(self):
        net = _fresh()
        points = net.allocations.leaf_intervals()
        rng = random.Random(5)
        for _ in range(500):
            addr = rng.getrandbits(32)
            hit = net.allocations.lookup(addr)
            assert _interval_lookup(points, addr) is hit


# -- layer 2: compiled path resolution ---------------------------------------


class TestCompiledResolve:
    def test_matches_reference_walk(self, monkeypatch):
        compiled = _fresh()
        reference = _reference(monkeypatch)
        assert compiled.forwarder.compiled_enabled
        assert not reference.forwarder.compiled_enabled
        src = compiled.vantage_address
        dsts = [s24.first + offset
                for s24 in compiled.universe_slash24s[:24]
                for offset in (0, 1, 77, 255)]
        for dst in dsts:
            for flow in range(3):
                for nonce in (1, 2):
                    fast = compiled.forwarder.resolve_path(
                        src, dst, flow, nonce
                    )
                    slow = reference.forwarder.resolve_path(
                        src, dst, flow, nonce
                    )
                    assert fast == slow, (hex(dst), flow, nonce)

    def test_shared_paths_are_identical_objects(self):
        net = _fresh()
        forwarder = net.forwarder
        src = net.vantage_address
        # Addresses of one /24 share the leaf route, so (outside
        # per-packet-balanced regions, whose paths legitimately vary per
        # probe) resolution must hand back the *same* tuple object — the
        # memory win of signature-keyed caching. At least some of the
        # scenario's /24s must exhibit the sharing.
        shared = 0
        for s24 in net.universe_slash24s:
            first = forwarder.resolve_path(src, s24.first, 0, 1)
            second = forwarder.resolve_path(src, s24.first + 1, 0, 2)
            if first is second:
                shared += 1
        assert shared > 0
        assert forwarder.cache_stats()["shared_paths"] > 0

    def test_hit_counters_and_stats_keys(self):
        net = _fresh()
        forwarder = net.forwarder
        src = net.vantage_address
        dst = net.universe_slash24s[0].first
        forwarder.resolve_path(src, dst, 0, 1)
        misses = forwarder.cache_misses
        forwarder.resolve_path(src, dst, 0, 2)
        assert forwarder.cache_hits >= 1
        assert forwarder.cache_misses == misses
        stats = forwarder.cache_stats()
        for key in (
            "hits", "misses", "hit_rate", "entries",
            "shared_paths", "entry_memo",
        ):
            assert key in stats
        assert 0.0 <= stats["hit_rate"] <= 1.0

    def test_precompile_idempotent(self):
        net = _fresh()
        before = net.forwarder.cache_stats()["entry_memo"]
        net.forwarder.precompile()
        net.forwarder.precompile()
        assert net.forwarder.cache_stats()["entry_memo"] == before

    def test_clear_cache_resets(self):
        net = _fresh()
        src = net.vantage_address
        net.forwarder.resolve_path(src, net.universe_slash24s[0].first, 0, 1)
        assert net.forwarder.cache_size > 0
        net.forwarder.clear_cache()
        assert net.forwarder.cache_size == 0

    def test_pickle_drops_compiled_state(self):
        import pickle

        net = _fresh()
        src = net.vantage_address
        net.forwarder.resolve_path(src, net.universe_slash24s[0].first, 0, 1)
        clone = pickle.loads(pickle.dumps(net.forwarder))
        assert clone.cache_size == 0
        # ...and resolves identically after the lazy rebuild.
        for s24 in net.universe_slash24s[:8]:
            assert clone.resolve_path(
                src, s24.first, 0, 1
            ) == net.forwarder.resolve_path(src, s24.first, 0, 1)


# -- layer 3: vectorised stochastic draws ------------------------------------


class TestNumpyDrawParity:
    """The numpy draws must be *bitwise* equal to the scalar ones —
    close-enough floats would silently fork the simulated universe."""

    ADDRS = np.arange(0x0A000000, 0x0A000100, dtype=np.uint64)

    def test_splitmix64(self):
        values = np.arange(0, 4096, dtype=np.uint64)
        batch = splitmix64_np(values)
        for value, hashed in zip(values.tolist(), batch.tolist()):
            assert hashed == splitmix64(value)

    def test_hosts_up(self):
        for epoch in (0, 7):
            mask = hostmod.hosts_up_in_epoch_np(
                SEED, self.ADDRS, epoch, 0.4, 0.6, 0.05
            )
            for addr, up in zip(self.ADDRS.tolist(), mask.tolist()):
                assert up == hostmod.host_up_in_epoch(
                    SEED, addr, epoch, 0.4, 0.6, 0.05
                )

    def test_default_ttls(self):
        weights = ((64, 0.6), (128, 0.3), (255, 0.1))
        ttls = hostmod.default_ttls_np(SEED, self.ADDRS, weights, 0.1)
        for addr, ttl in zip(self.ADDRS.tolist(), ttls.tolist()):
            assert ttl == hostmod.default_ttl(SEED, addr, weights, 0.1)

    def test_reverse_path_deltas(self):
        weights = ((0, 0.7), (1, 0.2), (-1, 0.1))
        deltas = hostmod.reverse_path_deltas_np(SEED, self.ADDRS, weights)
        for addr, delta in zip(self.ADDRS.tolist(), deltas.tolist()):
            assert delta == hostmod.reverse_path_delta(SEED, addr, weights)

    def test_stochastic_loss(self):
        nonces = np.arange(1, 2001, dtype=np.uint64)
        mask = stochastic_loss_np(SEED, nonces, 0.03)
        for nonce, lost in zip(nonces.tolist(), mask.tolist()):
            assert lost == stochastic_loss(SEED, nonce, 0.03)

    def test_stochastic_loss_zero_probability(self):
        nonces = np.arange(1, 50, dtype=np.uint64)
        assert not stochastic_loss_np(SEED, nonces, 0.0).any()

    def test_rtt_draws_reconstruct_path_rtt(self):
        net = _fresh()
        seed = net._built.rtt_seed
        path = net.forwarder.resolve_path(
            net.vantage_address, net.universe_slash24s[0].first, 0, 1
        )
        propagation = 2.0 * sum(router.latency_ms for router in path)
        nonces = list(range(1, 1001))
        jitter, flags, spike = rtt_draws_for_nonces(seed, nonces)
        assert any(flags)  # 1000 draws at 1% spike probability
        for index, nonce in enumerate(nonces):
            rtt = propagation + HOST_LATENCY_MS + jitter[index]
            if flags[index]:
                rtt += spike[index]
            assert rtt == path_rtt_ms(path, seed, nonce)


# -- layer 4: the batched probe API ------------------------------------------


def _replies_equal(batch, serial):
    assert len(batch) == len(serial)
    for got, expected in zip(batch, serial):
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got.kind == expected.kind
            assert got.source == expected.source
            assert got.ttl == expected.ttl
            assert got.rtt_ms == expected.rtt_ms  # bitwise


class TestSendProbeBatch:
    def _serial(self, net, dsts, ttl, flows, gap=0.0):
        replies = []
        for index, (dst, flow) in enumerate(zip(dsts, flows)):
            if index and gap:
                net.advance_clock(gap)
            replies.append(net.send_probe(dst, ttl, flow))
        return replies

    def _assert_batch_matches_serial(self, dsts, ttl, flows, gap=0.0):
        batch_net, serial_net = _fresh(), _fresh()
        batch = batch_net.send_probe_batch(
            dsts, ttl, flows, inter_probe_seconds=gap
        )
        serial = self._serial(serial_net, dsts, ttl, flows, gap)
        _replies_equal(batch, serial)
        assert batch_net.clock_seconds == serial_net.clock_seconds
        assert batch_net.probe_count == serial_net.probe_count
        assert batch_net._nonce == serial_net._nonce

    def test_host_sweep(self):
        net = _fresh()
        dsts = [addr for s24 in net.universe_slash24s[:4] for addr in s24]
        self._assert_batch_matches_serial(dsts, 64, [0] * len(dsts))

    def test_router_ttls(self):
        net = _fresh()
        dsts = [s24.first + 9 for s24 in net.universe_slash24s[:16]]
        for ttl in (1, 3, 6):
            self._assert_batch_matches_serial(dsts, ttl, list(range(len(dsts))))

    def test_ping_train_with_clock_gaps(self):
        net = _fresh()
        dst = net.universe_slash24s[0].first + 3
        self._assert_batch_matches_serial(
            [dst] * 20, 64, [7] * 20, gap=0.5
        )

    def test_unallocated_destinations_mixed_in(self):
        net = _fresh()
        unallocated = next(
            addr for addr in range(1, 1 << 24)
            if net.allocations.lookup(addr) is None
        )
        dsts = [net.universe_slash24s[0].first, unallocated] * 8
        self._assert_batch_matches_serial(dsts, 64, [0] * len(dsts))

    def test_nonpositive_ttl_still_advances_clock(self):
        self._assert_batch_matches_serial(
            [1, 2, 3, 4, 5, 6], 0, [0] * 6
        )

    def test_small_batch_takes_serial_path(self):
        dsts = [0x0A000001] * (MIN_VECTOR_BATCH - 1)
        self._assert_batch_matches_serial(dsts, 64, [0] * len(dsts))

    def test_flow_ids_length_mismatch_raises(self):
        net = _fresh()
        with pytest.raises(ValueError, match="flow_ids"):
            net.send_probe_batch([1, 2, 3], 64, [0, 1])

    def test_negative_gap_raises(self):
        net = _fresh()
        with pytest.raises(ValueError):
            net.send_probe_batch([1, 2, 3, 4], 64, 0, None, -1.0)

    def test_reference_engine_never_batches(self, monkeypatch):
        net = _reference(monkeypatch)
        dsts = [s24.first for s24 in net.universe_slash24s[:8]]
        net.send_probe_batch(dsts, 64)
        assert net.stats()["probe_batches"] == 0
        assert net.stats()["batched_probes"] == 0

    def test_stats_report_engine_counters(self):
        net = _fresh()
        dsts = [addr for s24 in net.universe_slash24s[:2] for addr in s24]
        net.send_probe_batch(dsts, 64)
        stats = net.stats()
        assert stats["probe_batches"] == 1
        assert stats["batched_probes"] == len(dsts)
        assert stats["probe_seconds"] > 0.0
        assert stats["probe_us_avg"] > 0.0
        assert stats["forwarder_cache_hits"] >= 0
        assert 0.0 <= stats["forwarder_cache_hit_rate"] <= 1.0
