"""Failure-injection tests: extreme scenario knobs must degrade the
pipeline gracefully, not break it."""

import dataclasses

import pytest

from repro.core import Category, TerminationPolicy, run_campaign
from repro.netsim import (
    EventConfig,
    ScenarioConfig,
    SimulatedInternet,
    tiny_scenario,
)
from repro.netsim.config import OrgSpec
from repro.netsim.orgs import OrgType
from repro.probing import Prober, identify_lasthops, paris_traceroute, scan


def _one_org_config(**org_overrides) -> ScenarioConfig:
    org = OrgSpec(
        name="FaultyNet",
        asn=65100,
        country="US",
        city="denver",
        org_type=OrgType.BROADBAND,
        num_slash24s=24,
        host_density_range=(0.3, 0.5),
        unresponsive_lasthop_fraction=0.0,
        split24_fraction=0.0,
    )
    org = dataclasses.replace(org, **org_overrides)
    return ScenarioConfig(seed=3, orgs=(org,))


class TestAllLasthopsSilent:
    def test_everything_unresponsive_lasthop(self):
        config = _one_org_config(unresponsive_lasthop_fraction=1.0)
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        campaign = run_campaign(
            internet, TerminationPolicy(),
            slash24s=snapshot.eligible_slash24s()[:10],
            snapshot=snapshot, seed=1, max_destinations_per_slash24=16,
        )
        counts = campaign.category_counts()
        assert counts[Category.SAME_LASTHOP] == 0
        assert counts[Category.NON_HIERARCHICAL] == 0
        assert (
            counts[Category.UNRESPONSIVE_LASTHOP]
            + counts[Category.TOO_FEW_ACTIVE]
            == campaign.total
        )


class TestNoHosts:
    def test_zero_density_yields_empty_snapshot(self):
        config = _one_org_config(host_density_range=(0.0, 0.0))
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        assert snapshot.total_active == 0
        assert snapshot.eligible_slash24s() == []


class TestTotalBlackout:
    def test_full_sleep_probability(self):
        config = dataclasses.replace(
            _one_org_config(), block_sleep_probability=1.0
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        # With every block asleep every epoch, only sleep survivors
        # answer; eligibility should collapse almost entirely.
        assert snapshot.total_active < 24 * 256 * 0.05


class TestLossless:
    def test_no_loss_no_rate_limit_clean_traceroutes(self):
        config = dataclasses.replace(
            _one_org_config(),
            router_loss_probability=0.0,
            host_loss_probability=0.0,
            lasthop_rate_limit=None,
            infra_rate_limit=None,
            block_sleep_probability=0.0,
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        prober = Prober(internet)
        slash24 = snapshot.eligible_slash24s()[0]
        dst = snapshot.active_in(slash24)[0]
        result = paris_traceroute(prober, dst, flow_id=1, retries=0)
        assert result.reached
        assert all(hop.address is not None for hop in result.hops)

    def test_lossless_lasthop_identification_always_usable(self):
        config = dataclasses.replace(
            _one_org_config(),
            router_loss_probability=0.0,
            host_loss_probability=0.0,
            lasthop_rate_limit=None,
            infra_rate_limit=None,
            block_sleep_probability=0.0,
            custom_ttl_probability=0.0,
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        prober = Prober(internet)
        slash24 = snapshot.eligible_slash24s()[0]
        for dst in snapshot.active_in(slash24)[:6]:
            if not internet.is_host_up(dst, epoch=0):
                continue
            result = identify_lasthops(prober, dst)
            assert result.host_responsive
            assert result.usable


class TestHeavyRateLimiting:
    def test_tight_lasthop_budget_starves_identification(self):
        config = dataclasses.replace(
            _one_org_config(), lasthop_rate_limit=(1.0, 0.01)
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        prober = Prober(internet)
        slash24 = snapshot.eligible_slash24s()[0]
        unresponsive = 0
        for dst in snapshot.active_in(slash24)[:8]:
            result = identify_lasthops(prober, dst)
            if result.host_responsive and not result.lasthops:
                unresponsive += 1
        # After the single token per bucket is spent, last-hop replies
        # dry up for most destinations.
        assert unresponsive >= 4


class TestExtremeScale:
    def test_minimal_org(self):
        config = _one_org_config(num_slash24s=1)
        internet = SimulatedInternet.from_config(config)
        assert len(internet.universe_slash24s) >= 1

    def test_custom_ttls_everywhere_still_measurable(self):
        config = dataclasses.replace(
            _one_org_config(), custom_ttl_probability=1.0
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        prober = Prober(internet)
        slash24 = snapshot.eligible_slash24s()[0]
        usable = 0
        for dst in snapshot.active_in(slash24)[:8]:
            result = identify_lasthops(prober, dst)
            usable += result.usable
        # The halving fallback keeps identification working even when
        # every host uses an uncommon default TTL.
        assert usable >= 4


# -- dynamic-internet stressors (repro.netsim.events) -------------------------


def _events_config(events, **org_overrides):
    return dataclasses.replace(
        _one_org_config(**org_overrides), events=events
    )


class TestRenumberingWave:
    def test_full_wave_campaign_completes(self):
        config = _events_config(EventConfig(renumber_fraction=1.0))
        internet = SimulatedInternet.from_config(config)
        assert internet.events is not None
        snapshot = scan(internet)
        campaign = run_campaign(
            internet, TerminationPolicy(),
            slash24s=snapshot.eligible_slash24s()[:10],
            snapshot=snapshot, seed=1, max_destinations_per_slash24=16,
        )
        assert campaign.total == 10
        assert internet.events.renumbering_pod_count > 0

    def test_wave_changes_outcomes_vs_static(self):
        """The wave must actually bite: the stressed world's snapshot or
        campaign outcomes differ from the static world's."""
        static = SimulatedInternet.from_config(_one_org_config())
        waved = SimulatedInternet.from_config(
            _events_config(EventConfig(renumber_fraction=1.0))
        )
        static_snap, waved_snap = scan(static), scan(waved)
        static_run = run_campaign(
            static, TerminationPolicy(),
            slash24s=static_snap.eligible_slash24s()[:10],
            snapshot=static_snap, seed=1, max_destinations_per_slash24=16,
        )
        waved_run = run_campaign(
            waved, TerminationPolicy(),
            slash24s=waved_snap.eligible_slash24s()[:10],
            snapshot=waved_snap, seed=1, max_destinations_per_slash24=16,
        )
        assert (
            static_run.category_counts() != waved_run.category_counts()
            or static_snap.total_active != waved_snap.total_active
            or waved.events.counters["renumber"] > 0
        )


class TestTotalOutage:
    def test_permanent_outage_degrades_gracefully(self):
        """outage_duty=1.0 keeps selected pods dark for every probe:
        the snapshot collapses instead of the campaign crashing."""
        config = _events_config(
            EventConfig(outage_fraction=1.0, outage_duty=1.0)
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        campaign = run_campaign(
            internet, TerminationPolicy(),
            slash24s=snapshot.eligible_slash24s()[:10],
            snapshot=snapshot, seed=1, max_destinations_per_slash24=16,
        )
        assert campaign.total <= 10  # possibly zero eligible: still fine
        counts = campaign.category_counts()
        assert counts[Category.SAME_LASTHOP] + counts[
            Category.NON_HIERARCHICAL
        ] + counts[Category.HIERARCHICAL] <= campaign.total


class TestRateLimitStorm:
    """Satellite check: every probe path registers storm-scaled limiters
    identically, so a context reset restores them and paths agree."""

    def _storm_config(self):
        return dataclasses.replace(
            _events_config(EventConfig(storm_duty=1.0, storm_factor=0.02)),
            lasthop_rate_limit=(4.0, 2.0),
        )

    def test_batched_replies_bitwise_equal_serial_under_storm(self):
        serial_net = SimulatedInternet.from_config(self._storm_config())
        batch_net = SimulatedInternet.from_config(self._storm_config())
        dsts = [
            s24.network | 9 for s24 in serial_net.universe_slash24s[:16]
        ] * 4  # repeats so buckets run dry mid-run
        for ttl in (1, 2, 3):
            serial, batch = [], None
            serial_net.begin_measurement_context(0.0, 1000 + ttl)
            batch_net.begin_measurement_context(0.0, 1000 + ttl)
            for dst in dsts:
                serial.append(serial_net.send_probe(dst, ttl, 0))
            batch = batch_net.send_probe_batch(dsts, ttl, 0)
            assert len(batch) == len(serial)
            for got, expected in zip(batch, serial):
                if expected is None:
                    assert got is None
                else:
                    assert got is not None
                    assert got.source == expected.source
                    assert got.rtt_ms == expected.rtt_ms
            assert serial_net.clock_seconds == batch_net.clock_seconds

    def test_denied_probes_still_register_limiters(self):
        """A storm-denied reply must leave its limiter in the touched
        set — otherwise the next context would inherit a drained
        bucket and break /24 order-independence. The TTL sweep
        guarantees we cross the rate-limited last-hop router wherever
        it sits on this path."""
        internet = SimulatedInternet.from_config(self._storm_config())
        internet.begin_measurement_context(0.0, 7)
        dst = internet.universe_slash24s[0].network | 9
        train = [(ttl, i) for ttl in range(1, 9) for i in range(4)]
        replies = [internet.send_probe(dst, ttl=ttl) for ttl, _ in train]
        assert internet.events.counters["storm"] > 0
        assert any(reply is None for reply in replies)  # storm denied some
        assert internet._touched_limiters
        # Context reset restores the bucket: the same probe train
        # replays identically.
        internet.begin_measurement_context(0.0, 7)
        again = [internet.send_probe(dst, ttl=ttl) for ttl, _ in train]
        for first, second in zip(replies, again):
            assert (first is None) == (second is None)
            if first is not None:
                assert first.rtt_ms == second.rtt_ms

    def test_storm_counter_fires(self):
        internet = SimulatedInternet.from_config(self._storm_config())
        dst = internet.universe_slash24s[0].network | 9
        for ttl in range(1, 9):
            internet.send_probe(dst, ttl=ttl)
        assert internet.events.counters["storm"] > 0
