"""Failure-injection tests: extreme scenario knobs must degrade the
pipeline gracefully, not break it."""

import dataclasses

import pytest

from repro.core import Category, TerminationPolicy, run_campaign
from repro.netsim import ScenarioConfig, SimulatedInternet, tiny_scenario
from repro.netsim.config import OrgSpec
from repro.netsim.orgs import OrgType
from repro.probing import Prober, identify_lasthops, paris_traceroute, scan


def _one_org_config(**org_overrides) -> ScenarioConfig:
    org = OrgSpec(
        name="FaultyNet",
        asn=65100,
        country="US",
        city="denver",
        org_type=OrgType.BROADBAND,
        num_slash24s=24,
        host_density_range=(0.3, 0.5),
        unresponsive_lasthop_fraction=0.0,
        split24_fraction=0.0,
    )
    org = dataclasses.replace(org, **org_overrides)
    return ScenarioConfig(seed=3, orgs=(org,))


class TestAllLasthopsSilent:
    def test_everything_unresponsive_lasthop(self):
        config = _one_org_config(unresponsive_lasthop_fraction=1.0)
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        campaign = run_campaign(
            internet, TerminationPolicy(),
            slash24s=snapshot.eligible_slash24s()[:10],
            snapshot=snapshot, seed=1, max_destinations_per_slash24=16,
        )
        counts = campaign.category_counts()
        assert counts[Category.SAME_LASTHOP] == 0
        assert counts[Category.NON_HIERARCHICAL] == 0
        assert (
            counts[Category.UNRESPONSIVE_LASTHOP]
            + counts[Category.TOO_FEW_ACTIVE]
            == campaign.total
        )


class TestNoHosts:
    def test_zero_density_yields_empty_snapshot(self):
        config = _one_org_config(host_density_range=(0.0, 0.0))
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        assert snapshot.total_active == 0
        assert snapshot.eligible_slash24s() == []


class TestTotalBlackout:
    def test_full_sleep_probability(self):
        config = dataclasses.replace(
            _one_org_config(), block_sleep_probability=1.0
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        # With every block asleep every epoch, only sleep survivors
        # answer; eligibility should collapse almost entirely.
        assert snapshot.total_active < 24 * 256 * 0.05


class TestLossless:
    def test_no_loss_no_rate_limit_clean_traceroutes(self):
        config = dataclasses.replace(
            _one_org_config(),
            router_loss_probability=0.0,
            host_loss_probability=0.0,
            lasthop_rate_limit=None,
            infra_rate_limit=None,
            block_sleep_probability=0.0,
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        prober = Prober(internet)
        slash24 = snapshot.eligible_slash24s()[0]
        dst = snapshot.active_in(slash24)[0]
        result = paris_traceroute(prober, dst, flow_id=1, retries=0)
        assert result.reached
        assert all(hop.address is not None for hop in result.hops)

    def test_lossless_lasthop_identification_always_usable(self):
        config = dataclasses.replace(
            _one_org_config(),
            router_loss_probability=0.0,
            host_loss_probability=0.0,
            lasthop_rate_limit=None,
            infra_rate_limit=None,
            block_sleep_probability=0.0,
            custom_ttl_probability=0.0,
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        prober = Prober(internet)
        slash24 = snapshot.eligible_slash24s()[0]
        for dst in snapshot.active_in(slash24)[:6]:
            if not internet.is_host_up(dst, epoch=0):
                continue
            result = identify_lasthops(prober, dst)
            assert result.host_responsive
            assert result.usable


class TestHeavyRateLimiting:
    def test_tight_lasthop_budget_starves_identification(self):
        config = dataclasses.replace(
            _one_org_config(), lasthop_rate_limit=(1.0, 0.01)
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        prober = Prober(internet)
        slash24 = snapshot.eligible_slash24s()[0]
        unresponsive = 0
        for dst in snapshot.active_in(slash24)[:8]:
            result = identify_lasthops(prober, dst)
            if result.host_responsive and not result.lasthops:
                unresponsive += 1
        # After the single token per bucket is spent, last-hop replies
        # dry up for most destinations.
        assert unresponsive >= 4


class TestExtremeScale:
    def test_minimal_org(self):
        config = _one_org_config(num_slash24s=1)
        internet = SimulatedInternet.from_config(config)
        assert len(internet.universe_slash24s) >= 1

    def test_custom_ttls_everywhere_still_measurable(self):
        config = dataclasses.replace(
            _one_org_config(), custom_ttl_probability=1.0
        )
        internet = SimulatedInternet.from_config(config)
        snapshot = scan(internet)
        prober = Prober(internet)
        slash24 = snapshot.eligible_slash24s()[0]
        usable = 0
        for dst in snapshot.active_in(slash24)[:8]:
            result = identify_lasthops(prober, dst)
            usable += result.usable
        # The halving fallback keeps identification working even when
        # every host uses an uncommon default TTL.
        assert usable >= 4
