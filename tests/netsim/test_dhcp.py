"""Tests for the DHCP renumbering substrate."""

import pytest

from repro.netsim.dhcp import (
    EPOCHS_PER_LEASE,
    PodLeaseMap,
    lease_of_epoch,
    renumbered_address,
)


def _multi_slash24_pod(internet):
    for pod in internet.pods:
        if len(pod.slash24s()) >= 3:
            return pod
    pytest.fail("no multi-/24 pod")


class TestLeaseOfEpoch:
    def test_epoch_zero(self):
        assert lease_of_epoch(0) == 0

    def test_within_first_lease(self):
        assert lease_of_epoch(EPOCHS_PER_LEASE - 1) == 0

    def test_second_lease(self):
        assert lease_of_epoch(EPOCHS_PER_LEASE) == 1

    def test_negative_epochs(self):
        assert lease_of_epoch(-1) == -1
        assert lease_of_epoch(-EPOCHS_PER_LEASE) == -1
        assert lease_of_epoch(-EPOCHS_PER_LEASE - 1) == -2


class TestPodLeaseMap:
    def test_bijection(self, shared_internet):
        pod = _multi_slash24_pod(shared_internet)
        lease_map = PodLeaseMap(pod, lease=3)
        seen = set()
        for identity in range(lease_map.identity_count):
            addr = lease_map.address_of(identity)
            assert lease_map.identity_of(addr) == identity
            seen.add(addr)
        assert len(seen) == lease_map.identity_count

    def test_addresses_stay_inside_pod(self, shared_internet):
        pod = _multi_slash24_pod(shared_internet)
        networks = {p.network for p in pod.slash24s()}
        lease_map = PodLeaseMap(pod, lease=7)
        for identity in range(0, lease_map.identity_count, 97):
            addr = lease_map.address_of(identity)
            assert (addr & 0xFFFFFF00) in networks

    def test_leases_differ(self, shared_internet):
        pod = _multi_slash24_pod(shared_internet)
        a = PodLeaseMap(pod, lease=0)
        b = PodLeaseMap(pod, lease=1)
        moved = sum(
            a.address_of(i) != b.address_of(i)
            for i in range(0, a.identity_count, 13)
        )
        assert moved > 0

    def test_identity_of_foreign_address(self, shared_internet):
        pod = _multi_slash24_pod(shared_internet)
        lease_map = PodLeaseMap(pod, lease=0)
        assert lease_map.identity_of(0xC6000001) is None

    def test_rejects_identity_out_of_range(self, shared_internet):
        pod = _multi_slash24_pod(shared_internet)
        lease_map = PodLeaseMap(pod, lease=0)
        with pytest.raises(ValueError):
            lease_map.address_of(lease_map.identity_count)


class TestRenumbering:
    def test_roundtrip_identity(self, shared_internet):
        pod = _multi_slash24_pod(shared_internet)
        old_epoch = 0
        new_epoch = EPOCHS_PER_LEASE
        addr = pod.slash24s()[0].network + 10
        new_addr = renumbered_address(pod, addr, old_epoch, new_epoch)
        assert new_addr is not None
        # The identity holding the new address at the new lease is the
        # identity that held the old address at the old lease.
        old_map = PodLeaseMap(pod, lease_of_epoch(old_epoch))
        new_map = PodLeaseMap(pod, lease_of_epoch(new_epoch))
        assert new_map.identity_of(new_addr) == old_map.identity_of(addr)

    def test_same_lease_same_address(self, shared_internet):
        pod = _multi_slash24_pod(shared_internet)
        addr = pod.slash24s()[0].network + 10
        assert renumbered_address(pod, addr, 0, 1) == addr

    def test_most_addresses_move_across_leases(self, shared_internet):
        pod = _multi_slash24_pod(shared_internet)
        slash24 = pod.slash24s()[0]
        moved = sum(
            renumbered_address(pod, slash24.network + o, 0, EPOCHS_PER_LEASE)
            != slash24.network + o
            for o in range(0, 256, 16)
        )
        assert moved >= 8
