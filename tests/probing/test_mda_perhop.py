"""Tests for per-hop MDA, including agreement with path-level MDA."""

import pytest

from repro.probing import Prober, enumerate_paths
from repro.probing.mda_perhop import enumerate_hops


def _responsive_destinations(internet, snapshot, count=4):
    found = []
    for slash24 in snapshot.eligible_slash24s():
        for addr in snapshot.active_in(slash24):
            if internet.is_host_up(addr, epoch=0):
                found.append(addr)
                break
        if len(found) >= count:
            break
    return found


class TestEnumerateHops:
    def test_reaches_destination(self, internet, snapshot, prober):
        dst = _responsive_destinations(internet, snapshot, 1)[0]
        result = enumerate_hops(prober, dst)
        assert result.reached
        assert len(result.hops) >= 4

    def test_interfaces_are_routers(self, internet, snapshot, prober):
        dst = _responsive_destinations(internet, snapshot, 1)[0]
        result = enumerate_hops(prober, dst)
        for hop in result.hops:
            for interface in hop.interfaces:
                assert internet.topology.by_address(interface) is not None

    def test_unreachable_gives_up(self, internet, prober):
        result = enumerate_hops(prober, 0xC6000001, max_ttl=12)
        assert not result.reached
        assert result.probes_used < 12 * 64  # silent-run cutoff fired

    def test_width_product_bounds_path_count(self, internet, snapshot):
        dst = _responsive_destinations(internet, snapshot, 1)[0]
        per_hop = enumerate_hops(Prober(internet), dst)
        per_path = enumerate_paths(Prober(internet), dst)
        assert per_path.route_count <= max(per_hop.width_product(), 1) * 2

    def test_agreement_with_path_level(self, internet, snapshot):
        """Every interface on an enumerated path appears in the per-hop
        sets at the right depth (modulo losses)."""
        for dst in _responsive_destinations(internet, snapshot, 3):
            per_hop = enumerate_hops(Prober(internet), dst)
            per_path = enumerate_paths(Prober(internet), dst)
            if not (per_hop.reached and per_path.reached):
                continue
            hop_sets = per_hop.interface_sets
            missing = 0
            checked = 0
            for route in per_path.routes:
                for depth, interface in enumerate(route):
                    if interface is None or depth >= len(hop_sets):
                        continue
                    checked += 1
                    if interface not in hop_sets[depth]:
                        missing += 1
            assert checked > 0
            # Rate limiting / loss can hide a few interfaces; most must
            # agree.
            assert missing <= max(2, checked // 5)

    def test_lasthop_interfaces_match_forwarding(self, internet, snapshot):
        dst = _responsive_destinations(internet, snapshot, 1)[0]
        result = enumerate_hops(Prober(internet), dst)
        if result.lasthop_interfaces:
            path = internet.forwarder.resolve_path(
                internet.vantage_address, dst, 0
            )
            assert path[-1].address in result.lasthop_interfaces

    def test_probe_cost_cheaper_than_path_level_on_diverse_paths(
        self, internet, snapshot
    ):
        """Across several destinations, per-hop MDA should not cost
        dramatically more than path-level MDA (it pays per hop, not per
        combination)."""
        per_hop_total = 0
        per_path_total = 0
        for dst in _responsive_destinations(internet, snapshot, 4):
            per_hop_total += enumerate_hops(Prober(internet), dst).probes_used
            per_path_total += enumerate_paths(
                Prober(internet), dst
            ).probes_used
        assert per_hop_total < per_path_total * 3
