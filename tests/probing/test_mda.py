"""Tests for MDA path enumeration and last-hop identification."""

import pytest

from repro.net import Prefix
from repro.probing import (
    Prober,
    enumerate_paths,
    identify_lasthops,
)


def _addresses_of_pod(internet, snapshot, predicate, count=4):
    """Active snapshot addresses belonging to pods matching predicate."""
    for slash24 in snapshot.eligible_slash24s():
        pods = internet.allocations.slash24_pods(slash24)
        if len(pods) == 1 and predicate(pods[0]):
            actives = [
                a for a in snapshot.active_in(slash24)
                if internet.is_host_up(a, epoch=0)
            ]
            if len(actives) >= count:
                return actives[:count]
    pytest.fail("no matching pod found")


class TestEnumeratePaths:
    def test_finds_multiple_per_flow_paths(self, internet, snapshot, prober):
        addrs = _addresses_of_pod(
            internet, snapshot, lambda pod: not pod.unresponsive_lasthop, 1
        )
        result = enumerate_paths(prober, addrs[0])
        assert result.reached
        # The core diamond is per-flow with width > 1 in the scenario.
        assert result.route_count >= 1
        assert result.probes_used > 0

    def test_unresponsive_host(self, internet, prober):
        result = enumerate_paths(prober, 0xC6000001, max_ttl=5)
        assert not result.reached
        assert result.route_count == 0

    def test_lasthop_addresses_consistent(self, internet, snapshot, prober):
        addrs = _addresses_of_pod(
            internet, snapshot, lambda pod: not pod.unresponsive_lasthop, 1
        )
        result = enumerate_paths(prober, addrs[0])
        for lasthop in result.lasthop_addresses:
            if lasthop is not None:
                router = internet.topology.by_address(lasthop)
                assert router is not None


class TestIdentifyLasthops:
    def test_single_lasthop_pod(self, internet, snapshot, prober):
        addrs = _addresses_of_pod(
            internet,
            snapshot,
            lambda pod: pod.lasthop_count == 1
            and not pod.unresponsive_lasthop,
        )
        expected = None
        for addr in addrs:
            result = identify_lasthops(prober, addr)
            if not result.host_responsive:
                continue
            assert result.usable
            assert len(result.lasthops) == 1
            router_addr = next(iter(result.lasthops))
            router = internet.topology.by_address(router_addr)
            assert router is not None
            if expected is None:
                expected = router_addr
            else:
                assert router_addr == expected

    def test_lasthop_matches_forwarding(self, internet, snapshot, prober):
        addrs = _addresses_of_pod(
            internet,
            snapshot,
            lambda pod: pod.lasthop_count == 1
            and not pod.unresponsive_lasthop,
            count=1,
        )
        result = identify_lasthops(prober, addrs[0])
        if result.usable:
            path = internet.forwarder.resolve_path(
                internet.vantage_address, addrs[0], 0
            )
            assert path[-1].address in result.lasthops

    def test_unresponsive_lasthop_pod(self, internet, snapshot, prober):
        addrs = _addresses_of_pod(
            internet, snapshot, lambda pod: pod.unresponsive_lasthop
        )
        saw_unresponsive = False
        for addr in addrs:
            result = identify_lasthops(prober, addr)
            if result.host_responsive and not result.lasthops:
                saw_unresponsive = True
                assert result.lasthop_unresponsive
        assert saw_unresponsive

    def test_dead_host(self, internet, prober):
        result = identify_lasthops(prober, 0xC6000001)
        assert not result.host_responsive
        assert not result.usable

    def test_perdest_pod_neighbours_diverge(self, internet, snapshot, prober):
        addrs = _addresses_of_pod(
            internet,
            snapshot,
            lambda pod: pod.lasthop_count >= 2
            and pod.lasthop_mode == "per-destination"
            and not pod.unresponsive_lasthop,
            count=8,
        )
        lasthops = set()
        for addr in addrs:
            result = identify_lasthops(prober, addr)
            lasthops.update(result.lasthops)
        assert len(lasthops) >= 2

    def test_probe_cost_is_bounded(self, internet, snapshot, prober):
        addrs = _addresses_of_pod(
            internet, snapshot, lambda pod: not pod.unresponsive_lasthop, 4
        )
        for addr in addrs:
            result = identify_lasthops(prober, addr)
            assert result.probes_used < 200
