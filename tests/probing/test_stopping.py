"""Tests for the MDA stopping rule."""

import pytest

from repro.probing import probes_required, probes_to_rule_out, stopping_table


class TestStoppingRule:
    def test_published_table_values(self):
        # The canonical MDA table at 95% (Augustin et al., E2EMON 2007):
        # having seen k interfaces, send N(k+1) probes in total.
        assert probes_required(1) == 6
        assert probes_required(2) == 11
        assert probes_required(3) == 16
        assert probes_required(4) == 21
        assert probes_required(5) == 27

    def test_paper_quoted_value(self):
        # Section 3.5: "a router has a single nexthop interface at the
        # probability of 95% if 6 probes are responded by a single
        # nexthop interface".
        assert probes_required(1, confidence=0.95) == 6

    def test_monotone_in_observed(self):
        values = [probes_required(k) for k in range(1, 16)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_higher_confidence_needs_more_probes(self):
        assert probes_required(1, 0.99) > probes_required(1, 0.95)

    def test_zero_observed_treated_as_one(self):
        assert probes_required(0) == probes_required(1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            probes_required(-1)

    def test_rule_out_validations(self):
        with pytest.raises(ValueError):
            probes_to_rule_out(1)
        with pytest.raises(ValueError):
            probes_to_rule_out(2, confidence=1.0)
        with pytest.raises(ValueError):
            probes_to_rule_out(2, confidence=0.0)

    def test_stopping_table_shape(self):
        table = stopping_table(max_observed=8)
        assert set(table) == set(range(1, 9))
        assert table[1] == 6

    def test_statistical_guarantee(self):
        # With j equally-loaded next hops and N(j) probes, the chance of
        # missing a specific hop is at most alpha/j — verify by direct
        # computation of the bound the formula encodes.
        import math

        for j in range(2, 10):
            n = probes_to_rule_out(j, 0.95)
            missing_one = ((j - 1) / j) ** n
            assert missing_one * j <= 0.05 + 1e-9
