"""Tests for the ZMap scan, ping and probe sessions."""

import pytest

from repro.net import Prefix
from repro.probing import (
    ProbeBudgetExceeded,
    Prober,
    ping,
    scan,
    scan_with_probes,
)


class TestScan:
    def test_snapshot_covers_universe(self, internet):
        snapshot = scan(internet)
        assert snapshot.epoch == internet.config.snapshot_epoch
        assert snapshot.slash24_count > 0
        assert snapshot.total_active > 0

    def test_active_lists_sorted(self, internet):
        snapshot = scan(internet)
        for slash24 in internet.universe_slash24s[:10]:
            active = snapshot.active_in(slash24)
            assert active == sorted(active)

    def test_is_active(self, internet):
        snapshot = scan(internet)
        slash24 = next(
            p for p in internet.universe_slash24s if snapshot.active_in(p)
        )
        addr = snapshot.active_in(slash24)[0]
        assert snapshot.is_active(addr)
        assert not snapshot.is_active(0xC6000001)

    def test_slash26_groups(self, internet):
        snapshot = scan(internet)
        eligible = snapshot.eligible_slash24s()
        assert eligible
        groups = snapshot.slash26_groups(eligible[0])
        assert len(groups) == 4

    def test_eligibility_criteria(self, internet):
        snapshot = scan(internet)
        for slash24 in snapshot.eligible_slash24s()[:20]:
            active = snapshot.active_in(slash24)
            assert len(active) >= 4
            assert snapshot.covers_every_slash26(slash24)

    def test_scan_restricted_slash24s(self, internet):
        some = internet.universe_slash24s[:3]
        snapshot = scan(internet, slash24s=some)
        assert snapshot.slash24_count <= 3

    def test_probe_scan_approximates_fast_scan(self, internet):
        slash24 = internet.universe_slash24s[0]
        prober = Prober(internet)
        probed = scan_with_probes(prober, [slash24], retries=3)
        epoch = probed.epoch
        oracle = set(internet.active_addresses_in_slash24(slash24, epoch))
        found = set(probed.active_in(slash24))
        # Retransmissions make misses vanishingly rare; allow a couple.
        assert len(oracle.symmetric_difference(found)) <= max(
            2, len(oracle) // 20
        )


class TestPing:
    def _responsive(self, internet):
        for slash24 in internet.universe_slash24s:
            for addr in internet.active_addresses_in_slash24(slash24):
                if internet.is_host_up(addr):
                    return addr
        pytest.fail("no responsive host")

    def test_ping_counts(self, internet):
        prober = Prober(internet)
        addr = self._responsive(internet)
        result = ping(prober, addr, count=10)
        assert len(result.rtts_ms) == 10
        assert result.successes

    def test_loss_rate(self, internet):
        prober = Prober(internet)
        result = ping(prober, 0xC6000001, count=5)
        assert result.loss_rate == 1.0
        assert result.first_minus_max_rest_seconds() is None

    def test_first_minus_rest(self, internet):
        prober = Prober(internet)
        addr = self._responsive(internet)
        result = ping(prober, addr, count=10)
        diff = result.first_minus_max_rest_seconds()
        if diff is not None:
            assert -5.0 < diff < 5.0


class TestProber:
    def test_budget_enforced(self, internet):
        prober = Prober(internet, max_probes=3)
        for _ in range(3):
            prober.probe(0xC6000001, 64)
        with pytest.raises(ProbeBudgetExceeded):
            prober.probe(0xC6000001, 64)

    def test_stats_accounting(self, internet):
        prober = Prober(internet)
        prober.probe(0xC6000001, 64)  # timeout
        assert prober.stats.sent == 1
        assert prober.stats.timeouts == 1
        assert prober.stats.loss_rate == 1.0

    def test_echo_with_retries(self, internet):
        prober = Prober(internet)
        assert prober.echo_with_retries(0xC6000001, retries=2) is None
        assert prober.stats.sent == 3
