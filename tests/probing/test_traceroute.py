"""Tests for traceroute variants and route comparison."""

import pytest

from repro.probing import (
    Prober,
    classic_traceroute,
    paris_traceroute,
    route_sets_share_route,
    routes_equal,
)


def _responsive_destination(internet, snapshot):
    for slash24 in snapshot.eligible_slash24s():
        for addr in snapshot.active_in(slash24):
            if internet.is_host_up(addr, epoch=0):
                return addr
    pytest.fail("no responsive destination")


class TestParisTraceroute:
    def test_reaches_destination(self, internet, snapshot, prober):
        dst = _responsive_destination(internet, snapshot)
        result = paris_traceroute(prober, dst, flow_id=3)
        assert result.reached
        assert len(result.hops) >= 4

    def test_hops_are_routers(self, internet, snapshot, prober):
        dst = _responsive_destination(internet, snapshot)
        result = paris_traceroute(prober, dst, flow_id=3)
        for hop in result.hops:
            if hop.address is not None:
                assert internet.topology.by_address(hop.address) is not None

    def test_same_flow_same_route(self, internet, snapshot, prober):
        dst = _responsive_destination(internet, snapshot)
        a = paris_traceroute(prober, dst, flow_id=9)
        b = paris_traceroute(prober, dst, flow_id=9)
        assert routes_equal(a.route, b.route, wildcards=True)

    def test_lasthop_is_final_router(self, internet, snapshot, prober):
        dst = _responsive_destination(internet, snapshot)
        result = paris_traceroute(prober, dst, flow_id=3)
        if result.lasthop_address is not None:
            path = internet.forwarder.resolve_path(
                internet.vantage_address, dst, 3
            )
            assert result.lasthop_address == path[-1].address

    def test_first_ttl_skips_hops(self, internet, snapshot, prober):
        dst = _responsive_destination(internet, snapshot)
        full = paris_traceroute(prober, dst, flow_id=3)
        partial = paris_traceroute(prober, dst, flow_id=3, first_ttl=3)
        assert len(partial.hops) == len(full.hops) - 2

    def test_unreachable_host(self, internet, prober):
        # Unallocated space: every probe times out.
        result = paris_traceroute(prober, 0xC6000001, max_ttl=5, retries=0)
        assert not result.reached
        assert all(h.address is None for h in result.hops)


class TestClassicTraceroute:
    def test_reaches_destination(self, internet, snapshot, prober):
        dst = _responsive_destination(internet, snapshot)
        result = classic_traceroute(prober, dst)
        assert result.reached

    def test_classic_can_mix_paths(self, internet, snapshot, prober):
        # Across many destinations, classic traceroute should sometimes
        # report a route that no single Paris trace produces (mixing
        # per-flow branches). We only assert it runs and reaches.
        dst = _responsive_destination(internet, snapshot)
        result = classic_traceroute(prober, dst, base_flow_id=100)
        assert result.probes_used >= len(result.hops)


class TestRouteComparison:
    def test_equal_routes(self):
        assert routes_equal((1, 2, 3), (1, 2, 3))

    def test_unequal_routes(self):
        assert not routes_equal((1, 2, 3), (1, 9, 3))

    def test_length_mismatch(self):
        assert not routes_equal((1, 2), (1, 2, 3))

    def test_wildcards_match_anything(self):
        assert routes_equal((1, None, 3), (1, 2, 3), wildcards=True)
        assert routes_equal((None, 2, 3), (1, 2, 3), wildcards=True)

    def test_wildcards_disabled(self):
        assert not routes_equal((1, None, 3), (1, 2, 3), wildcards=False)

    def test_double_wildcard(self):
        assert routes_equal((1, None, 3), (1, 2, None), wildcards=True)

    def test_paper_example(self):
        # <A,B,C>, <A,*,C> and <*,B,C> are all identical (Section 2.1).
        a = (0xA, 0xB, 0xC)
        b = (0xA, None, 0xC)
        c = (None, 0xB, 0xC)
        assert routes_equal(a, b)
        assert routes_equal(a, c)
        assert routes_equal(b, c)

    def test_route_sets_share(self):
        set_a = {(1, 2, 3), (1, 4, 3)}
        set_b = {(1, 4, 3), (9, 9, 9)}
        assert route_sets_share_route(set_a, set_b)

    def test_route_sets_disjoint(self):
        assert not route_sets_share_route({(1, 2)}, {(3, 4)})
