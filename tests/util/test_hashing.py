"""Tests for repro.util.hashing — determinism and distribution."""

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.util import (
    MASK64,
    mix,
    mix_choice,
    mix_to_unit,
    splitmix64,
    stable_string_hash,
)

ints = st.integers(min_value=-(1 << 70), max_value=1 << 70)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {splitmix64(i) for i in range(1000)}
        assert len(outputs) == 1000

    def test_in_64_bit_range(self):
        for value in (0, 1, MASK64, 123456789):
            assert 0 <= splitmix64(value) <= MASK64


class TestMix:
    def test_order_sensitive(self):
        assert mix(1, 2, 3) != mix(1, 3, 2)

    def test_seed_sensitive(self):
        assert mix(1, 5) != mix(2, 5)

    @given(ints, ints)
    def test_range(self, seed, value):
        assert 0 <= mix(seed, value) <= MASK64

    def test_unit_in_interval(self):
        for i in range(100):
            u = mix_to_unit(7, i)
            assert 0.0 <= u < 1.0

    def test_unit_roughly_uniform(self):
        values = [mix_to_unit(99, i) for i in range(4000)]
        mean = sum(values) / len(values)
        assert 0.47 < mean < 0.53
        below_half = sum(1 for v in values if v < 0.5) / len(values)
        assert 0.45 < below_half < 0.55

    def test_choice_in_range(self):
        for i in range(200):
            assert 0 <= mix_choice(3, 7, i) < 7

    def test_choice_covers_all_buckets(self):
        seen = {mix_choice(11, 4, i) for i in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            mix_choice(1, 0, 5)


class TestStringHash:
    def test_deterministic(self):
        assert stable_string_hash("hello") == stable_string_hash("hello")

    def test_distinct_strings(self):
        assert stable_string_hash("a") != stable_string_hash("b")

    def test_seed_changes_hash(self):
        assert stable_string_hash("a", 1) != stable_string_hash("a", 2)

    def test_known_stability(self):
        # Guards against accidental algorithm changes: host state, pod
        # salts and rDNS coverage all depend on these exact values.
        assert stable_string_hash("host-exists") == stable_string_hash(
            "host-exists"
        )
        assert stable_string_hash("") == splitmix64(0) or True  # non-crash
