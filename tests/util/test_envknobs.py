"""Validated env-knob parsing: malformed operational knobs must fail
loudly, at the knob, naming the variable — not twelve frames deep in
the campaign executor, and never silently disarming fault injection."""

import pytest

from repro.util.envknobs import (
    EnvKnobError,
    event_intensity_env,
    float_env,
    kill_after_for_worker,
    parse_kill_spec,
    positive_float_env,
)


class TestFloatEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_X", raising=False)
        assert float_env("REPRO_X", 3.5) == 3.5

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "  ")
        assert float_env("REPRO_X", 3.5) == 3.5

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "2.25")
        assert float_env("REPRO_X", 3.5) == 2.25

    def test_non_numeric_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "soon")
        with pytest.raises(EnvKnobError, match="REPRO_X"):
            float_env("REPRO_X", 3.5)

    def test_nan_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "nan")
        with pytest.raises(EnvKnobError, match="NaN"):
            float_env("REPRO_X", 3.5)

    def test_bounds_enforced(self, monkeypatch):
        monkeypatch.setenv("REPRO_X", "1.5")
        with pytest.raises(EnvKnobError, match="maximum"):
            float_env("REPRO_X", 0.0, minimum=0.0, maximum=1.0)
        monkeypatch.setenv("REPRO_X", "-0.1")
        with pytest.raises(EnvKnobError, match="minimum"):
            float_env("REPRO_X", 0.0, minimum=0.0, maximum=1.0)

    def test_envknoberror_is_a_valueerror(self):
        assert issubclass(EnvKnobError, ValueError)


class TestPositiveFloatEnv:
    def test_positive_value_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL", "2.0")
        assert positive_float_env("REPRO_LEASE_TTL", 30.0) == 2.0

    def test_zero_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL", "0")
        with pytest.raises(EnvKnobError, match="REPRO_LEASE_TTL"):
            positive_float_env("REPRO_LEASE_TTL", 30.0)

    def test_negative_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL", "-5")
        with pytest.raises(EnvKnobError, match="> 0"):
            positive_float_env("REPRO_LEASE_TTL", 30.0)

    def test_junk_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL", "fast")
        with pytest.raises(EnvKnobError, match="REPRO_LEASE_TTL"):
            positive_float_env("REPRO_LEASE_TTL", 30.0)


class TestParseKillSpec:
    def test_none_and_empty_mean_no_kills(self):
        assert parse_kill_spec(None) == []
        assert parse_kill_spec("") == []
        assert parse_kill_spec("  ") == []

    def test_single_entry(self):
        assert parse_kill_spec("0:3") == [(0, 3)]

    def test_multiple_entries(self):
        assert parse_kill_spec("0:1,2:5") == [(0, 1), (2, 5)]

    def test_zero_count_clamped_to_one(self):
        # Killing before the first checkpoint would test nothing.
        assert parse_kill_spec("1:0") == [(1, 1)]

    def test_missing_colon_raises(self):
        with pytest.raises(EnvKnobError, match="missing ':'"):
            parse_kill_spec("3")

    def test_non_numeric_raises(self):
        with pytest.raises(EnvKnobError, match="not numeric"):
            parse_kill_spec("zero:1")
        with pytest.raises(EnvKnobError, match="not numeric"):
            parse_kill_spec("0:one")

    def test_negative_raises(self):
        with pytest.raises(EnvKnobError, match="negative"):
            parse_kill_spec("-1:2")

    def test_error_names_the_variable(self):
        with pytest.raises(EnvKnobError, match="REPRO_LEASE_KILL"):
            parse_kill_spec("oops", name="REPRO_LEASE_KILL")
        with pytest.raises(EnvKnobError, match="CUSTOM_KNOB"):
            parse_kill_spec("oops", name="CUSTOM_KNOB")

    def test_trailing_commas_tolerated(self):
        assert parse_kill_spec("0:1,") == [(0, 1)]


class TestKillAfterForWorker:
    def test_targeted_worker(self):
        assert kill_after_for_worker("0:2,3:7", 3) == 7

    def test_untargeted_worker(self):
        assert kill_after_for_worker("0:2", 1) is None

    def test_no_spec(self):
        assert kill_after_for_worker(None, 0) is None


class TestEventIntensityEnv:
    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENTS", raising=False)
        assert event_intensity_env() is None

    def test_value_in_range(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENTS", "0.6")
        assert event_intensity_env() == 0.6

    def test_out_of_range_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENTS", "1.5")
        with pytest.raises(EnvKnobError, match="REPRO_EVENTS"):
            event_intensity_env()
        monkeypatch.setenv("REPRO_EVENTS", "-0.2")
        with pytest.raises(EnvKnobError):
            event_intensity_env()

    def test_junk_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENTS", "lots")
        with pytest.raises(EnvKnobError, match="REPRO_EVENTS"):
            event_intensity_env()


class TestCampaignIntegration:
    """The parent validates knobs *before* forking workers: a worker
    dying at startup on a bad knob would silently disarm the very fault
    injection the knob was meant to drive."""

    def _tiny_campaign(self, workers):
        from repro.core import TerminationPolicy, run_campaign
        from repro.netsim import SimulatedInternet, tiny_scenario
        from repro.probing import scan

        internet = SimulatedInternet.from_config(tiny_scenario(seed=11))
        snapshot = scan(internet)
        return run_campaign(
            internet,
            TerminationPolicy(),
            slash24s=snapshot.eligible_slash24s()[:4],
            snapshot=snapshot,
            seed=5,
            max_destinations_per_slash24=16,
            workers=workers,
        )

    def test_bad_ttl_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_TTL", "short")
        with pytest.raises(EnvKnobError, match="REPRO_LEASE_TTL"):
            self._tiny_campaign(workers=2)

    def test_bad_kill_spec_fails_fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_KILL", "first-worker")
        with pytest.raises(EnvKnobError, match="REPRO_LEASE_KILL"):
            self._tiny_campaign(workers=2)
