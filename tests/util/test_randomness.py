"""Tests for repro.util.randomness."""

from repro.util import SeedSpawner


class TestSeedSpawner:
    def test_reproducible(self):
        assert SeedSpawner(1).seed("x") == SeedSpawner(1).seed("x")

    def test_name_separation(self):
        spawner = SeedSpawner(1)
        assert spawner.seed("topology") != spawner.seed("hosts")

    def test_index_separation(self):
        spawner = SeedSpawner(1)
        assert spawner.seed("org", 0) != spawner.seed("org", 1)

    def test_root_separation(self):
        assert SeedSpawner(1).seed("x") != SeedSpawner(2).seed("x")

    def test_random_streams_independent(self):
        spawner = SeedSpawner(5)
        a = spawner.random("a").random()
        b = spawner.random("b").random()
        assert a != b

    def test_random_stream_reproducible(self):
        values_1 = [SeedSpawner(5).random("a").random() for _ in range(1)]
        values_2 = [SeedSpawner(5).random("a").random() for _ in range(1)]
        assert values_1 == values_2

    def test_numpy_generator(self):
        spawner = SeedSpawner(5)
        x = spawner.numpy("n").integers(1 << 30)
        y = SeedSpawner(5).numpy("n").integers(1 << 30)
        assert x == y

    def test_child_spawner_differs_from_parent(self):
        parent = SeedSpawner(5)
        child = parent.child("org", 7)
        assert child.seed("x") != parent.seed("x")
        assert child.seed("x") == SeedSpawner(5).child("org", 7).seed("x")
