"""Tests for repro.util.tables."""

import pytest

from repro.util import format_percent, render_series, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "b"], [[1, "x"], [23, "y"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "23 | y" in text

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = render_table(["col"], [])
        assert "col" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_render_series(self):
        text = render_series("name", [(1, 2)], x_label="x", y_label="y")
        assert "name" in text
        assert "x" in text


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(1, 4) == "25.0%"

    def test_zero_denominator(self):
        assert format_percent(1, 0) == "n/a"

    def test_rounding(self):
        assert format_percent(1, 3) == "33.3%"
