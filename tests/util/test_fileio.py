"""Tests for the atomic file-write helpers."""

import os

import pytest

from repro.util.fileio import (
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
)


class TestAtomicWriter:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_writer(path) as handle:
            handle.write("hello")
        assert path.read_text() == "hello"

    def test_binary_mode(self, tmp_path):
        path = tmp_path / "out.bin"
        with atomic_writer(path, mode="wb") as handle:
            handle.write(b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_writer(path) as handle:
            handle.write("new")
        assert path.read_text() == "new"

    def test_error_leaves_no_file(self, tmp_path):
        path = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as handle:
                handle.write("partial")
                raise RuntimeError("boom")
        assert not path.exists()
        assert os.listdir(tmp_path) == []  # temp file cleaned up too

    def test_error_preserves_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("precious")
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as handle:
                handle.write("partial")
                raise RuntimeError("boom")
        assert path.read_text() == "precious"

    def test_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_writer(tmp_path / "x", mode="r"):
                pass
        with pytest.raises(ValueError):
            with atomic_writer(tmp_path / "x", mode="a"):
                pass


class TestHelpers:
    def test_write_text(self, tmp_path):
        path = tmp_path / "t.txt"
        atomic_write_text(path, "content")
        assert path.read_text() == "content"

    def test_write_bytes(self, tmp_path):
        path = tmp_path / "b.bin"
        atomic_write_bytes(path, b"content")
        assert path.read_bytes() == b"content"
