"""Tests for repro.net.blockset."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    BlockSet,
    Prefix,
    adjacency_lcp_lengths,
    contiguous_runs,
    extremes_lcp_length,
    normalize,
    parse,
    visualization_coordinates,
)


def s24(text: str) -> Prefix:
    return Prefix.parse(text + "/24")


class TestNormalize:
    def test_merges_sibling_halves(self):
        result = normalize(
            [Prefix.parse("10.0.0.0/25"), Prefix.parse("10.0.0.128/25")]
        )
        assert result == [Prefix.parse("10.0.0.0/24")]

    def test_removes_nested(self):
        result = normalize(
            [Prefix.parse("10.0.0.0/8"), Prefix.parse("10.1.0.0/16")]
        )
        assert result == [Prefix.parse("10.0.0.0/8")]

    def test_keeps_disjoint(self):
        a, b = Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.2.0/24")
        assert normalize([b, a]) == [a, b]

    def test_merges_adjacent_runs(self):
        result = normalize([s24("10.0.0.0"), s24("10.0.1.0"), s24("10.0.2.0")])
        assert [str(p) for p in result] == ["10.0.0.0/23", "10.0.2.0/24"]

    def test_empty(self):
        assert normalize([]) == []

    @settings(max_examples=40)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=200).map(
                lambda n: Prefix(0x0A000000 + n * 256, 24)
            ),
            max_size=30,
        )
    )
    def test_normalize_preserves_coverage(self, prefix_list):
        result = normalize(prefix_list)
        covered_before = set()
        for p in prefix_list:
            covered_before.update(range(p.first, p.last + 1, 64))
        for probe in covered_before:
            assert any(p.contains_address(probe) for p in result)
        # Result is non-overlapping and sorted.
        for left, right in zip(result, result[1:]):
            assert left.last < right.first


class TestContiguousRuns:
    def test_single_run(self):
        runs = contiguous_runs([s24("10.0.1.0"), s24("10.0.0.0")])
        assert len(runs) == 1
        assert len(runs[0]) == 2

    def test_split_runs(self):
        runs = contiguous_runs([s24("10.0.0.0"), s24("10.0.2.0")])
        assert len(runs) == 2

    def test_rejects_non_slash24(self):
        with pytest.raises(ValueError):
            contiguous_runs([Prefix.parse("10.0.0.0/23")])


class TestAdjacencyMetrics:
    def test_adjacent_pair_lengths(self):
        lengths = adjacency_lcp_lengths([s24("10.0.0.0"), s24("10.0.1.0")])
        assert lengths == [23]

    def test_distant_pair(self):
        lengths = adjacency_lcp_lengths([s24("10.0.0.0"), s24("138.0.0.0")])
        assert lengths == [0]

    def test_extremes(self):
        assert extremes_lcp_length(
            [s24("10.0.0.0"), s24("10.0.1.0"), s24("10.0.3.0")]
        ) == 22

    def test_extremes_single_block(self):
        assert extremes_lcp_length([s24("10.0.0.0")]) == 24

    def test_visualization_coordinates(self):
        coords = visualization_coordinates(
            [s24("10.0.0.0"), s24("10.0.1.0"), s24("10.0.4.0")]
        )
        # x1=1; adjacent pair adds 24-23=1; /22-distant pair adds 24-21=3.
        assert coords == [1.0, 2.0, 5.0]

    def test_coordinates_monotone(self):
        coords = visualization_coordinates(
            [s24("10.0.0.0"), s24("40.0.0.0"), s24("90.0.0.0")]
        )
        assert coords == sorted(coords)
        assert len(set(coords)) == len(coords)


class TestBlockSet:
    def test_coverage(self):
        blocks = BlockSet([Prefix.parse("10.0.0.0/24")])
        assert blocks.covers_address(parse("10.0.0.9"))
        assert not blocks.covers_address(parse("10.0.1.0"))

    def test_covers_prefix(self):
        blocks = BlockSet([Prefix.parse("10.0.0.0/16")])
        assert blocks.covers_prefix(Prefix.parse("10.0.5.0/24"))
        assert not blocks.covers_prefix(Prefix.parse("10.0.0.0/8"))

    def test_overlaps_prefix(self):
        blocks = BlockSet([Prefix.parse("10.0.5.0/24")])
        assert blocks.overlaps_prefix(Prefix.parse("10.0.0.0/16"))
        assert not blocks.overlaps_prefix(Prefix.parse("11.0.0.0/16"))

    def test_total_addresses_deduplicates(self):
        blocks = BlockSet(
            [Prefix.parse("10.0.0.0/25"), Prefix.parse("10.0.0.0/24")]
        )
        assert blocks.total_addresses() == 256

    def test_normalized(self):
        blocks = BlockSet(
            [Prefix.parse("10.0.0.0/25"), Prefix.parse("10.0.0.128/25")]
        )
        assert blocks.normalized() == [Prefix.parse("10.0.0.0/24")]

    def test_len_and_iter(self):
        members = [Prefix.parse("10.0.0.0/24"), Prefix.parse("11.0.0.0/24")]
        blocks = BlockSet(members)
        assert len(blocks) == 2
        assert list(blocks) == members
