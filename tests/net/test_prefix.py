"""Tests for repro.net.prefix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    AddressError,
    AddressRange,
    Prefix,
    enclosing_prefix,
    lcp_length_between_slash24s,
    longest_common_prefix,
    parse,
    to_prefixes,
)

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


@st.composite
def prefixes(draw):
    length = draw(st.integers(min_value=0, max_value=32))
    network = draw(addresses) & (((1 << 32) - 1) << (32 - length)) & ((1 << 32) - 1)
    return Prefix(network & ((1 << 32) - 1), length)


class TestPrefixBasics:
    def test_parse(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.network == parse("10.0.0.0")
        assert p.length == 8

    def test_parse_bare_address_is_host(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_str_roundtrip(self):
        assert str(Prefix.parse("192.0.2.0/24")) == "192.0.2.0/24"

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix(parse("10.0.0.1"), 24)

    def test_of_masks_host_bits(self):
        assert Prefix.of(parse("10.0.0.99"), 24) == Prefix.parse("10.0.0.0/24")

    def test_first_last_size(self):
        p = Prefix.parse("10.0.0.0/25")
        assert p.first == parse("10.0.0.0")
        assert p.last == parse("10.0.0.127")
        assert p.size == 128

    def test_iteration(self):
        p = Prefix.parse("10.0.0.0/30")
        assert list(p) == [p.first, p.first + 1, p.first + 2, p.first + 3]

    def test_ordering_is_by_network_then_length(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert sorted([c, b, a]) == [a, b, c]


class TestContainment:
    def test_contains_address(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.contains_address(parse("10.0.0.255"))
        assert not p.contains_address(parse("10.0.1.0"))

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/16")
        inner = Prefix.parse("10.0.5.0/24")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.contains_prefix(p)

    def test_in_operator(self):
        p = Prefix.parse("10.0.0.0/24")
        assert parse("10.0.0.7") in p
        assert Prefix.parse("10.0.0.0/25") in p

    @given(prefixes(), prefixes())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert a.is_disjoint(b) == (not a.overlaps(b))

    @given(prefixes(), prefixes())
    def test_overlap_means_nesting(self, a, b):
        # CIDR prefixes can only overlap by nesting.
        if a.overlaps(b):
            assert a.contains_prefix(b) or b.contains_prefix(a)


class TestDerivation:
    def test_supernet(self):
        p = Prefix.parse("10.0.1.0/24")
        assert p.supernet(16) == Prefix.parse("10.0.0.0/16")
        assert p.supernet() == Prefix.parse("10.0.0.0/23")

    def test_supernet_rejects_narrowing(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    def test_subnets(self):
        p = Prefix.parse("10.0.0.0/24")
        halves = list(p.subnets())
        assert halves == [
            Prefix.parse("10.0.0.0/25"), Prefix.parse("10.0.0.128/25"),
        ]

    def test_slash24s(self):
        p = Prefix.parse("10.0.0.0/22")
        assert len(list(p.slash24s())) == 4

    def test_slash24s_rejects_narrower(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/25").slash24s())

    @given(prefixes())
    def test_subnets_partition(self, p):
        if p.length >= 32:
            return
        subs = list(p.subnets())
        assert sum(s.size for s in subs) == p.size
        assert subs[0].first == p.first
        assert subs[-1].last == p.last


class TestLcp:
    def test_longest_common_prefix(self):
        a = Prefix.parse("10.0.0.0/24")
        b = Prefix.parse("10.0.1.0/24")
        assert longest_common_prefix(a, b) == Prefix.parse("10.0.0.0/23")

    def test_lcp_between_slash24s(self):
        a = Prefix.parse("10.0.0.0/24")
        b = Prefix.parse("10.0.1.0/24")
        assert lcp_length_between_slash24s(a, b) == 23

    def test_lcp_identical_slash24s(self):
        a = Prefix.parse("10.0.0.0/24")
        assert lcp_length_between_slash24s(a, a) == 24

    def test_lcp_requires_slash24(self):
        with pytest.raises(AddressError):
            lcp_length_between_slash24s(
                Prefix.parse("10.0.0.0/25"), Prefix.parse("10.0.1.0/24")
            )

    def test_enclosing_prefix(self):
        block = enclosing_prefix([parse("10.0.0.2"), parse("10.0.0.125")])
        assert block == Prefix.parse("10.0.0.0/25")

    def test_enclosing_prefix_single_address(self):
        assert enclosing_prefix([parse("1.2.3.4")]).length == 32


class TestAddressRange:
    def test_of_addresses(self):
        r = AddressRange.of_addresses([5, 1, 3])
        assert (r.first, r.last) == (1, 5)

    def test_rejects_inverted(self):
        with pytest.raises(AddressError):
            AddressRange(5, 1)

    def test_contains(self):
        assert AddressRange(0, 10).contains(AddressRange(2, 5))
        assert not AddressRange(2, 5).contains(AddressRange(0, 10))

    def test_disjoint(self):
        assert AddressRange(0, 4).disjoint(AddressRange(5, 9))
        assert not AddressRange(0, 5).disjoint(AddressRange(5, 9))

    def test_hierarchical_disjoint(self):
        assert AddressRange(0, 4).hierarchical_with(AddressRange(5, 9))

    def test_hierarchical_nested(self):
        assert AddressRange(0, 9).hierarchical_with(AddressRange(3, 5))

    def test_non_hierarchical_partial_overlap(self):
        assert not AddressRange(0, 6).hierarchical_with(AddressRange(3, 9))

    @given(
        st.tuples(addresses, addresses), st.tuples(addresses, addresses)
    )
    def test_hierarchical_symmetry(self, pair_a, pair_b):
        a = AddressRange(min(pair_a), max(pair_a))
        b = AddressRange(min(pair_b), max(pair_b))
        assert a.hierarchical_with(b) == b.hierarchical_with(a)


class TestToPrefixes:
    def test_aligned_block(self):
        result = to_prefixes(parse("10.0.0.0"), parse("10.0.0.127"))
        assert result == [Prefix.parse("10.0.0.0/25")]

    def test_unaligned_range(self):
        result = to_prefixes(parse("10.0.0.64"), parse("10.0.0.191"))
        assert [str(p) for p in result] == ["10.0.0.64/26", "10.0.0.128/26"]

    def test_single_address(self):
        result = to_prefixes(7, 7)
        assert result == [Prefix(7, 32)]

    @given(addresses, addresses)
    def test_covers_exactly(self, a, b):
        first, last = min(a, b), max(a, b)
        # Bound the enumeration cost: clip to 4096 addresses.
        last = min(last, first + 4095)
        result = to_prefixes(first, last)
        # Contiguous, exact cover.
        cursor = first
        for p in result:
            assert p.first == cursor
            cursor = p.last + 1
        assert cursor == last + 1
