"""Tests for the IPv6 groundwork (parsing, RFC 5952 formatting, ranges,
and Hobbit's hierarchy test over 128-bit addresses)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hierarchy import find_non_hierarchical_pair, ranges_hierarchical
from repro.net.v6 import (
    MAX_V6,
    Prefix6,
    Range6,
    V6Error,
    common_prefix_length_v6,
    format_v6,
    group_ranges_v6,
    measurement_unit_of,
    parse_v6,
    v6_groups_hierarchical,
)

v6_addresses = st.integers(min_value=0, max_value=MAX_V6)


class TestParsing:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("::", 0),
            ("::1", 1),
            ("1::", 1 << 112),
            ("2001:db8::1", 0x20010DB8 << 96 | 1),
            (
                "2001:db8:0:0:0:0:0:1",
                0x20010DB8 << 96 | 1,
            ),
            ("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", MAX_V6),
            ("::ffff:192.0.2.1", 0xFFFF_C000_0201),
        ],
    )
    def test_known_values(self, text, value):
        assert parse_v6(text) == value

    @pytest.mark.parametrize(
        "text",
        ["", ":::", "1::2::3", "12345::", "g::", "1:2:3:4:5:6:7",
         "1:2:3:4:5:6:7:8:9", "::192.0.2.1:1"],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(V6Error):
            parse_v6(text)

    def test_uppercase_accepted(self):
        assert parse_v6("2001:DB8::A") == parse_v6("2001:db8::a")


class TestFormatting:
    @pytest.mark.parametrize(
        "value,text",
        [
            (0, "::"),
            (1, "::1"),
            (0x20010DB8 << 96 | 1, "2001:db8::1"),
            (MAX_V6, "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"),
        ],
    )
    def test_canonical_forms(self, value, text):
        assert format_v6(value) == text

    def test_single_zero_group_not_compressed(self):
        # RFC 5952: '::' only for runs of two or more zero groups.
        value = parse_v6("2001:db8:0:1:1:1:1:1")
        assert format_v6(value) == "2001:db8:0:1:1:1:1:1"

    def test_leftmost_longest_run_compressed(self):
        value = parse_v6("2001:0:0:1:0:0:0:1")
        assert format_v6(value) == "2001:0:0:1::1"

    @given(v6_addresses)
    def test_roundtrip(self, value):
        assert parse_v6(format_v6(value)) == value

    def test_rejects_out_of_range(self):
        with pytest.raises(V6Error):
            format_v6(MAX_V6 + 1)


class TestPrefix6:
    def test_parse_and_bounds(self):
        prefix = Prefix6.parse("2001:db8::/32")
        assert prefix.first == parse_v6("2001:db8::")
        assert prefix.last == parse_v6("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff")

    def test_contains(self):
        prefix = Prefix6.parse("2001:db8::/32")
        assert prefix.contains_address(parse_v6("2001:db8::42"))
        assert not prefix.contains_address(parse_v6("2001:db9::"))

    def test_interface_bits_rejected(self):
        with pytest.raises(V6Error):
            Prefix6(parse_v6("2001:db8::1"), 64)

    def test_of_masks(self):
        prefix = Prefix6.of(parse_v6("2001:db8::42"), 64)
        assert prefix == Prefix6.parse("2001:db8::/64")

    def test_measurement_unit(self):
        unit = measurement_unit_of(parse_v6("2001:db8:0:7::9"))
        assert str(unit) == "2001:db8:0:7::/64"

    def test_custom_unit_length(self):
        unit = measurement_unit_of(parse_v6("2001:db8:0:7::9"), 48)
        assert unit.length == 48

    def test_common_prefix_length(self):
        a = parse_v6("2001:db8::")
        b = parse_v6("2001:db8:8000::")
        assert common_prefix_length_v6(a, b) == 32
        c = parse_v6("2001:db8:0:8000::")
        assert common_prefix_length_v6(a, c) == 48
        assert common_prefix_length_v6(a, a) == 128


class TestHierarchyOverV6:
    def test_ranges_plug_into_hierarchy_test(self):
        base = parse_v6("2001:db8::")
        disjoint = [Range6(base, base + 10), Range6(base + 20, base + 30)]
        assert ranges_hierarchical(disjoint)
        overlapping = [Range6(base, base + 10), Range6(base + 5, base + 30)]
        assert not ranges_hierarchical(overlapping)
        pair = find_non_hierarchical_pair(overlapping)
        assert pair is not None

    def test_group_ranges_v6(self):
        base = parse_v6("2001:db8::")
        groups = {"a": [base + 5, base + 1], "b": [base + 9]}
        ranges = group_ranges_v6(groups)
        assert ranges[0].first == base + 1
        assert ranges[0].last == base + 5

    def test_v6_observations_non_hierarchical(self):
        """Interleaved per-destination last hops within a /64 are
        detected as homogeneous, exactly as for IPv4 /24s."""
        base = parse_v6("2001:db8:0:7::")
        observations = {
            base + i: frozenset({1 if i % 2 == 0 else 2})
            for i in range(8)
        }
        assert not v6_groups_hierarchical(observations)

    def test_v6_observations_hierarchical_split(self):
        """An aligned sub-/64 split stays hierarchical (candidate
        heterogeneity), as in IPv4."""
        base = parse_v6("2001:db8:0:7::")
        half = 1 << 63
        observations = {
            base + 1: frozenset({1}),
            base + 5: frozenset({1}),
            base + half + 1: frozenset({2}),
            base + half + 9: frozenset({2}),
        }
        assert v6_groups_hierarchical(observations)

    @given(
        st.lists(
            st.tuples(v6_addresses, v6_addresses).map(
                lambda t: Range6(min(t), max(t))
            ),
            max_size=10,
        )
    )
    def test_hierarchy_matches_quadratic_reference_on_v6(self, ranges):
        expected = all(
            a.hierarchical_with(b)
            for i, a in enumerate(ranges)
            for b in ranges[i + 1:]
        )
        assert ranges_hierarchical(ranges) == expected
