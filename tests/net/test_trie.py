"""Tests for repro.net.trie — longest-prefix-match correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Prefix, PrefixTrie, parse

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


@st.composite
def prefix_strategy(draw):
    length = draw(st.integers(min_value=0, max_value=32))
    network = draw(addresses)
    return Prefix.of(network, length)


class TestBasics:
    def test_insert_get(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "a")
        assert trie.get(p) == "a"
        assert len(trie) == 1

    def test_get_missing_returns_default(self):
        trie = PrefixTrie()
        assert trie.get(Prefix.parse("10.0.0.0/8"), "missing") == "missing"

    def test_insert_replaces(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "a")
        trie.insert(p, "b")
        assert trie.get(p) == "b"
        assert len(trie) == 1

    def test_remove(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "a")
        assert trie.remove(p)
        assert trie.get(p) is None
        assert len(trie) == 0
        assert not trie.remove(p)

    def test_remove_keeps_siblings(self):
        trie = PrefixTrie()
        a = Prefix.parse("10.0.0.0/9")
        b = Prefix.parse("10.128.0.0/9")
        trie.insert(a, 1)
        trie.insert(b, 2)
        trie.remove(a)
        assert trie.get(b) == 2

    def test_contains(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, None)  # value None is still present
        assert trie.get(p, "missing") is None


class TestLookup:
    def test_longest_prefix_wins(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        trie.insert(Prefix.parse("10.1.0.0/16"), "fine")
        match = trie.lookup(parse("10.1.2.3"))
        assert match is not None
        assert match[1] == "fine"
        assert match[0] == Prefix.parse("10.1.0.0/16")

    def test_falls_back_to_coarse(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        trie.insert(Prefix.parse("10.1.0.0/16"), "fine")
        assert trie.lookup(parse("10.2.0.1"))[1] == "coarse"

    def test_no_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert trie.lookup(parse("11.0.0.0")) is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        assert trie.lookup(parse("200.1.2.3"))[1] == "default"

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.7/32"), "host")
        assert trie.lookup(parse("10.0.0.7"))[1] == "host"
        assert trie.lookup(parse("10.0.0.8")) is None

    @settings(max_examples=50)
    @given(st.lists(prefix_strategy(), min_size=1, max_size=24), addresses)
    def test_matches_reference_implementation(self, prefix_list, probe):
        trie = PrefixTrie()
        values = {}
        for index, prefix in enumerate(prefix_list):
            trie.insert(prefix, index)
            values[prefix] = index  # later insert wins, like the trie
        expected = None
        best_len = -1
        for prefix, value in values.items():
            if prefix.contains_address(probe) and prefix.length > best_len:
                best_len = prefix.length
                expected = (prefix, value)
        actual = trie.lookup(probe)
        if expected is None:
            assert actual is None
        else:
            assert actual == expected


class TestTraversal:
    def _populated(self):
        trie = PrefixTrie()
        for text in ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "11.0.0.0/8"]:
            trie.insert(Prefix.parse(text), text)
        return trie

    def test_items_in_network_order(self):
        trie = self._populated()
        networks = [p.network for p, _v in trie.items()]
        assert networks == sorted(networks)
        assert len(list(trie.items())) == 4

    def test_subtree(self):
        trie = self._populated()
        below = {v for _p, v in trie.subtree(Prefix.parse("10.1.0.0/16"))}
        assert below == {"10.1.0.0/16", "10.1.2.0/24"}

    def test_subtree_empty(self):
        trie = self._populated()
        assert list(trie.subtree(Prefix.parse("12.0.0.0/8"))) == []

    def test_has_descendant(self):
        trie = self._populated()
        assert trie.has_descendant(Prefix.parse("10.1.0.0/16"))
        assert not trie.has_descendant(Prefix.parse("12.0.0.0/8"))

    def test_ancestors(self):
        trie = self._populated()
        above = [v for _p, v in trie.ancestors(Prefix.parse("10.1.2.0/24"))]
        assert above == ["10.0.0.0/8", "10.1.0.0/16"]

    def test_ancestors_excludes_self(self):
        trie = self._populated()
        above = [v for _p, v in trie.ancestors(Prefix.parse("10.0.0.0/8"))]
        assert above == []
