"""Tests for repro.net.addr."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import addr

addresses = st.integers(min_value=0, max_value=addr.MAX_ADDRESS)


class TestParseFormat:
    def test_parse_known_value(self):
        assert addr.parse("192.0.2.1") == 0xC0000201

    def test_format_known_value(self):
        assert addr.format_address(0xC0000201) == "192.0.2.1"

    def test_parse_zero(self):
        assert addr.parse("0.0.0.0") == 0

    def test_parse_max(self):
        assert addr.parse("255.255.255.255") == addr.MAX_ADDRESS

    @pytest.mark.parametrize(
        "text",
        ["1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d", "1..2.3", ""],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(addr.AddressError):
            addr.parse(text)

    @given(addresses)
    def test_roundtrip(self, value):
        assert addr.parse(addr.format_address(value)) == value

    def test_format_rejects_out_of_range(self):
        with pytest.raises(addr.AddressError):
            addr.format_address(1 << 32)
        with pytest.raises(addr.AddressError):
            addr.format_address(-1)


class TestOctets:
    def test_octets(self):
        assert addr.octets(addr.parse("10.20.30.40")) == (10, 20, 30, 40)

    @given(addresses)
    def test_from_octets_roundtrip(self, value):
        assert addr.from_octets(*addr.octets(value)) == value

    def test_from_octets_rejects_bad_octet(self):
        with pytest.raises(addr.AddressError):
            addr.from_octets(256, 0, 0, 0)


class TestMasks:
    def test_netmask_24(self):
        assert addr.format_address(addr.netmask(24)) == "255.255.255.0"

    def test_netmask_0(self):
        assert addr.netmask(0) == 0

    def test_netmask_32(self):
        assert addr.netmask(32) == addr.MAX_ADDRESS

    def test_hostmask_complements_netmask(self):
        for length in range(33):
            assert addr.netmask(length) ^ addr.hostmask(length) == addr.MAX_ADDRESS

    def test_netmask_rejects_bad_length(self):
        with pytest.raises(addr.AddressError):
            addr.netmask(33)

    def test_network_of(self):
        assert addr.network_of(addr.parse("10.1.2.3"), 8) == addr.parse("10.0.0.0")


class TestBlockHelpers:
    def test_slash24_of(self):
        assert addr.slash24_of(addr.parse("10.1.2.3")) == addr.parse("10.1.2.0")

    def test_slash26_of(self):
        assert addr.slash26_of(addr.parse("10.1.2.200")) == addr.parse("10.1.2.192")

    def test_slash31_of(self):
        assert addr.slash31_of(addr.parse("10.1.2.3")) == addr.parse("10.1.2.2")

    @given(addresses)
    def test_slash24_contains_address(self, value):
        network = addr.slash24_of(value)
        assert network <= value <= network + 255


class TestCommonPrefix:
    def test_identical_addresses(self):
        assert addr.common_prefix_length(5, 5) == 32

    def test_adjacent_slash24s(self):
        a = addr.parse("10.0.0.0")
        b = addr.parse("10.0.1.0")
        assert addr.common_prefix_length(a, b) == 23

    def test_disjoint_top_bit(self):
        assert addr.common_prefix_length(0, 1 << 31) == 0

    @given(addresses, addresses)
    def test_symmetry(self, a, b):
        assert addr.common_prefix_length(a, b) == addr.common_prefix_length(b, a)

    @given(addresses, addresses)
    def test_agreement_on_prefix(self, a, b):
        length = addr.common_prefix_length(a, b)
        if length:
            shift = 32 - length
            assert a >> shift == b >> shift
        if length < 32:
            shift = 32 - length - 1
            assert (a >> shift) != (b >> shift)


class TestSummarize:
    def test_bounds(self):
        assert addr.summarize_bounds([5, 1, 9, 3]) == (1, 9)

    def test_single(self):
        assert addr.summarize_bounds([7]) == (7, 7)

    def test_empty_rejected(self):
        with pytest.raises(addr.AddressError):
            addr.summarize_bounds([])

    def test_address_range_iterates_inclusive(self):
        assert list(addr.address_range(3, 6)) == [3, 4, 5, 6]

    def test_address_range_rejects_inverted(self):
        with pytest.raises(addr.AddressError):
            addr.address_range(6, 3)
