"""Tests for figure-series export and ground-truth scoring."""

import csv
import os

import pytest

from repro.analysis.figures import FIGURE_BUILDERS, export_figures
from repro.analysis.scoring import ValidationReport, score_pipeline
from repro.experiments import get_workspace


@pytest.fixture(scope="module")
def workspace():
    ws = get_workspace("tiny")
    ws.ensure_built()
    return ws


class TestFigureSeries:
    def test_all_builders_produce_series(self, workspace):
        for figure_id, builder in FIGURE_BUILDERS.items():
            series_map = builder(workspace)
            assert series_map, figure_id
            for name, series in series_map.items():
                if not name.startswith("fig9"):
                    # fig9's matched/unmatched split may legitimately be
                    # empty on one side at tiny scale.
                    assert series, name
                widths = {len(row) for row in series}
                assert len(widths) <= 1, f"{name} rows ragged"

    def test_cdf_series_monotone(self, workspace):
        series = FIGURE_BUILDERS["fig3"](workspace)
        for name, points in series.items():
            fractions = [fraction for _x, fraction in points]
            assert fractions == sorted(fractions), name
            assert fractions[-1] == pytest.approx(1.0)

    def test_fig11_curves_end_near_coverage(self, workspace):
        series = FIGURE_BUILDERS["fig11"](workspace)
        for name, points in series.items():
            assert points[-1][1] > 0.5, name

    def test_export_writes_csv(self, workspace, tmp_path):
        written = export_figures(workspace, str(tmp_path))
        assert len(written) >= 10
        non_empty = 0
        for path in written:
            assert os.path.exists(path)
            with open(path, newline="") as handle:
                rows = list(csv.reader(handle))
            non_empty += bool(rows)
        assert non_empty >= len(written) - 2


class TestScoring:
    def test_report_floors(self, workspace):
        report = score_pipeline(
            workspace.internet,
            workspace.campaign,
            workspace.aggregation.final_blocks,
        )
        assert report.analyzable > 100
        assert report.accuracy > 0.85
        assert report.homogeneous_precision > 0.9
        assert report.block_purity > 0.7
        assert len(report.rows()) == 6

    def test_empty_report_defaults(self):
        report = ValidationReport()
        assert report.accuracy == 0.0
        assert report.block_purity == 1.0
        assert report.homogeneous_recall == 0.0
