"""Tests for adjacency analysis and the characterisation reports."""

import pytest

from repro.aggregation import AggregatedBlock
from repro.analysis import (
    adjacency_summary,
    adjacent_pair_lengths,
    block_visualization,
    contiguous_segment_sizes,
    extremes_lengths,
    heterogeneous_by_asn,
    hosting_block_count,
    length_distribution,
    top_block_report,
    whois_examples,
)
from repro.net import Prefix


def s24(text: str) -> Prefix:
    return Prefix.parse(text + "/24")


def block(block_id, slash24s):
    return AggregatedBlock(
        block_id=block_id,
        lasthop_set=frozenset({block_id}),
        slash24s=tuple(sorted(slash24s)),
    )


class TestAdjacency:
    def test_adjacent_pair_lengths_pooled(self):
        blocks = [
            block(0, [s24("10.0.0.0"), s24("10.0.1.0")]),
            block(1, [s24("20.0.0.0")]),  # size 1: skipped
        ]
        assert adjacent_pair_lengths(blocks) == [23]

    def test_extremes_lengths(self):
        blocks = [block(0, [s24("10.0.0.0"), s24("200.0.0.0")])]
        assert extremes_lengths(blocks) == [0]

    def test_length_distribution(self):
        rows = length_distribution([23, 23, 0])
        assert rows[0] == (0, 1, pytest.approx(1 / 3))
        assert rows[-1] == (23, 2, pytest.approx(2 / 3))

    def test_visualization(self):
        b = block(0, [s24("10.0.0.0"), s24("10.0.1.0"), s24("10.0.4.0")])
        coords = block_visualization(b)
        assert coords[0] == 1.0
        assert coords == sorted(coords)

    def test_segments(self):
        b = block(0, [s24("10.0.0.0"), s24("10.0.1.0"), s24("10.0.4.0")])
        assert contiguous_segment_sizes(b) == [2, 1]

    def test_summary_keys(self):
        blocks = [block(0, [s24("10.0.0.0"), s24("10.0.1.0")])]
        summary = adjacency_summary(blocks)
        assert summary["fraction_length_23"] == 1.0
        assert summary["fraction_length_ge_20"] == 1.0


class TestReports:
    def test_heterogeneous_by_asn(self, shared_internet):
        truth = shared_internet.ground_truth
        splits = truth.split_slash24s()
        rows = heterogeneous_by_asn(splits, shared_internet.geodb, top=5)
        assert rows
        assert rows[0].rank == 1
        counts = [row.heterogeneous_slash24s for row in rows]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == len(splits)

    def test_whois_examples(self, shared_internet):
        truth = shared_internet.ground_truth
        splits = truth.split_slash24s()
        examples = whois_examples(shared_internet.whois, splits, limit=2)
        assert examples
        for slash24, records in examples:
            assert len(records) > 1

    def test_top_block_report(self, shared_internet):
        truth = shared_internet.ground_truth
        blocks = []
        for index, true_block in enumerate(truth.true_blocks()):
            blocks.append(
                AggregatedBlock(
                    block_id=index,
                    lasthop_set=true_block.lasthop_router_ids,
                    slash24s=true_block.slash24s,
                )
            )
        rows = top_block_report(blocks, shared_internet.geodb, count=5)
        assert len(rows) == 5
        sizes = [row.cluster_size for row in rows]
        assert sizes == sorted(sizes, reverse=True)
        assert all(row.organization != "?" for row in rows)

    def test_hosting_block_count(self, shared_internet):
        truth = shared_internet.ground_truth
        blocks = [
            AggregatedBlock(
                block_id=i,
                lasthop_set=tb.lasthop_router_ids,
                slash24s=tb.slash24s,
            )
            for i, tb in enumerate(truth.true_blocks())
        ]
        rows = top_block_report(blocks, shared_internet.geodb, count=10)
        assert 0 <= hosting_block_count(rows) <= 10
