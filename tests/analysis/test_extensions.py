"""Tests for the extension analyses: DHCP search, longitudinal
comparison and multi-vantage probing."""

import random

import pytest

from repro.aggregation import AggregatedBlock
from repro.analysis import (
    block_of_address,
    compare_campaigns,
    compare_search_strategies,
    fingerprint,
    search_for_host,
    study_vantages,
    vantage_addresses,
)
from repro.analysis.dhcp_search import block_candidates
from repro.core import TerminationPolicy, run_campaign
from repro.core.classifier import Category, Slash24Measurement
from repro.core.pipeline import CampaignResult
from repro.net import Prefix
from repro.netsim.dhcp import EPOCHS_PER_LEASE


def _blocks_from_truth(internet, min_size=2):
    blocks = []
    for index, tb in enumerate(internet.ground_truth.true_blocks()):
        blocks.append(
            AggregatedBlock(
                block_id=index,
                lasthop_set=tb.lasthop_router_ids,
                slash24s=tb.slash24s,
            )
        )
    return blocks


class TestDhcpSearch:
    def test_fingerprint_stable_within_lease(self, shared_internet):
        slash24 = shared_internet.universe_slash24s[0]
        addr = slash24.network + 9
        assert fingerprint(shared_internet, addr, 0) == fingerprint(
            shared_internet, addr, 1
        )

    def test_fingerprint_moves_across_leases(self, shared_internet):
        slash24 = shared_internet.universe_slash24s[0]
        addr = slash24.network + 9
        moved = fingerprint(shared_internet, addr, 0) != fingerprint(
            shared_internet, addr, EPOCHS_PER_LEASE
        )
        # The address usually changes hands (offset mask flips).
        if not moved:
            # At minimum some address in the /24 changes hands.
            assert any(
                fingerprint(shared_internet, slash24.network + o, 0)
                != fingerprint(
                    shared_internet, slash24.network + o, EPOCHS_PER_LEASE
                )
                for o in range(0, 256, 8)
            )

    def test_search_finds_renumbered_host(self, shared_internet):
        blocks = _blocks_from_truth(shared_internet)
        slash24 = shared_internet.universe_slash24s[0]
        addr = slash24.network + 9
        block = block_of_address(blocks, addr)
        assert block is not None
        outcome = search_for_host(
            shared_internet, addr, 0, EPOCHS_PER_LEASE,
            block_candidates(block, random.Random(1)), "hobbit-block",
        )
        assert outcome.found
        assert outcome.candidates_probed <= block.size * 256
        assert fingerprint(
            shared_internet, outcome.new_address, EPOCHS_PER_LEASE
        ) == fingerprint(shared_internet, addr, 0)

    def test_comparison_speedup(self, shared_internet, shared_snapshot):
        blocks = _blocks_from_truth(shared_internet)
        population = [p for b in blocks for p in b.slash24s]
        hosts = []
        for block in sorted(blocks, key=lambda b: -b.size)[:8]:
            actives = shared_snapshot.active_in(block.slash24s[0])
            if actives:
                hosts.append(actives[0])
        comparison = compare_search_strategies(
            shared_internet, blocks, hosts, 0, EPOCHS_PER_LEASE,
            population, seed=2, max_probes=50_000,
        )
        assert comparison.searches == len(hosts)
        assert comparison.block_found == comparison.searches
        assert comparison.expected_speedup > 3.0

    def test_block_of_address_miss(self, shared_internet):
        blocks = _blocks_from_truth(shared_internet)
        assert block_of_address(blocks, 0xC6000001) is None


class TestLongitudinal:
    def _measurement(self, slash24, category, lasthops):
        return Slash24Measurement(
            slash24=slash24,
            category=category,
            observations={slash24.network + 1: frozenset(lasthops)},
        )

    def test_compare_campaigns_synthetic(self):
        s24a = Prefix.parse("10.0.0.0/24")
        s24b = Prefix.parse("10.0.1.0/24")
        first = CampaignResult()
        second = CampaignResult()
        first.add(self._measurement(s24a, Category.SAME_LASTHOP, [1]))
        first.add(self._measurement(s24b, Category.SAME_LASTHOP, [2]))
        second.add(self._measurement(s24a, Category.SAME_LASTHOP, [1]))
        second.add(self._measurement(s24b, Category.HIERARCHICAL, [2, 9]))
        comparison = compare_campaigns(first, second)
        assert comparison.slash24s_in_both == 2
        assert comparison.same_verdict == 1
        assert comparison.homogeneous_in_both == 1
        assert comparison.same_lasthop_set == 1
        assert comparison.verdict_stability == 0.5

    def test_identical_campaigns_fully_stable(self, internet, snapshot):
        campaign = run_campaign(
            internet, TerminationPolicy(),
            slash24s=snapshot.eligible_slash24s()[:20],
            snapshot=snapshot, seed=3, max_destinations_per_slash24=32,
        )
        comparison = compare_campaigns(campaign, campaign)
        assert comparison.verdict_stability == 1.0
        assert comparison.set_stability == 1.0
        assert comparison.block_jaccard_mean == 1.0

    def test_disjoint_campaigns(self):
        comparison = compare_campaigns(CampaignResult(), CampaignResult())
        assert comparison.slash24s_in_both == 0
        assert comparison.verdict_stability == 0.0


class TestMultiVantage:
    def test_vantage_addresses_distinct(self, shared_internet):
        vantages = vantage_addresses(shared_internet, 3)
        assert len(set(vantages)) == 3
        assert vantages[0] == shared_internet.vantage_address

    def test_union_monotone(self, internet, snapshot):
        truth = internet.ground_truth
        sample = [
            p for p in snapshot.eligible_slash24s()
            if truth.is_homogeneous(p)
            and len(truth.lasthop_set_of(p)) >= 2
        ][:6]
        assert sample
        study = study_vantages(
            internet, snapshot, sample, vantage_count=2, seed=1,
            max_destinations=24,
        )
        one = study.union_sets(1)
        two = study.union_sets(2)
        for slash24, lasthops in one.items():
            assert lasthops <= two.get(slash24, frozenset())
        assert study.completeness(internet, 2) >= study.completeness(
            internet, 1
        ) - 1e-9

    def test_source_changes_some_lasthops(self, internet, snapshot):
        """Some pod has a source-hashing last-hop balancer, so probing
        from a different vantage flips some destination's last hop."""
        from repro.probing import Prober, identify_lasthops

        truth = internet.ground_truth
        pods = [
            pod for pod in internet.pods
            if pod.lasthop_source_hash and pod.slash24s()
        ]
        assert pods, "scenario should contain source-hashing pods"
        flipped = 0
        checked = 0
        for pod in pods[:5]:
            for slash24 in pod.slash24s()[:1]:
                for dst in snapshot.active_in(slash24)[:6]:
                    a = identify_lasthops(
                        Prober(internet), dst
                    ).lasthops
                    b = identify_lasthops(
                        Prober(
                            internet,
                            source=internet.vantage_address + 1,
                        ),
                        dst,
                    ).lasthops
                    if a and b:
                        checked += 1
                        if a != b:
                            flipped += 1
        assert checked > 0
        assert flipped > 0
