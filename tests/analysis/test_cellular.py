"""Tests for cellular detection by RTT behaviour."""

import pytest

from repro.aggregation import AggregatedBlock
from repro.analysis import BlockRttStudy, study_block


def _pod_block(internet, want_cellular):
    for pod in internet.pods:
        if pod.cellular == want_cellular and len(pod.slash24s()) >= 2:
            if pod.unresponsive_lasthop:
                continue
            return AggregatedBlock(
                block_id=pod.pod_id,
                lasthop_set=frozenset(pod.lasthop_router_ids),
                slash24s=tuple(pod.slash24s()),
            )
    pytest.fail(f"no pod with cellular={want_cellular}")


class TestBlockRttStudy:
    def test_cellular_block_positive_differences(self, internet, snapshot):
        block = _pod_block(internet, want_cellular=True)
        study = study_block(
            internet, block, snapshot, label="cell",
            slash24_sample=4, max_addresses_per_slash24=5, ping_count=6,
        )
        assert study.differences_seconds
        assert study.looks_cellular
        assert study.fraction_above(0.2) > 0.5

    def test_wired_block_near_zero(self, internet, snapshot):
        block = _pod_block(internet, want_cellular=False)
        study = study_block(
            internet, block, snapshot, label="wired",
            slash24_sample=4, max_addresses_per_slash24=5, ping_count=6,
        )
        assert study.differences_seconds
        assert not study.looks_cellular
        assert study.fraction_above(0.5) < 0.1

    def test_cdf_points(self):
        study = BlockRttStudy(
            label="x", differences_seconds=[-0.1, 0.0, 0.6, 1.2]
        )
        points = study.cdf_points([0.0, 1.0])
        assert points[0] == (0.0, 0.5)
        assert points[1] == (1.0, 0.75)

    def test_empty_study(self):
        study = BlockRttStudy(label="x")
        assert not study.looks_cellular
        assert study.fraction_above(0.5) == 0.0
