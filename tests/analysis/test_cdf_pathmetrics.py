"""Tests for CDF utilities and path-metric cardinalities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    cdf_at,
    cdf_table,
    empirical_cdf,
    fraction_above,
    histogram_fractions,
    lasthop_cardinality,
    links_of_route,
    links_of_route_sets,
    per_destination_lasthops,
    percentile,
    subpath_cardinality,
    traceroute_cardinality,
)
from repro.analysis.pathmetrics import common_router_depth


class TestCdf:
    def test_empirical_cdf(self):
        assert empirical_cdf([1, 2, 2, 4]) == [
            (1.0, 0.25), (2.0, 0.75), (4.0, 1.0),
        ]

    def test_empirical_cdf_empty(self):
        assert empirical_cdf([]) == []

    def test_cdf_at(self):
        values = [1, 2, 3, 4]
        assert cdf_at(values, 2) == 0.5
        assert cdf_at(values, 0) == 0.0
        assert cdf_at(values, 10) == 1.0

    def test_fraction_above(self):
        assert fraction_above([1, 2, 3, 4], 2) == 0.5

    def test_percentile(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    @pytest.mark.parametrize(
        "call",
        [
            lambda: percentile([], 50),
            lambda: cdf_at([], 1),
            lambda: fraction_above([], 1),
            lambda: cdf_table([], [1.0]),
        ],
    )
    def test_empty_inputs_raise_value_error(self, call):
        with pytest.raises(ValueError, match="empty"):
            call()

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError, match="outside"):
            percentile([1, 2], 150)

    def test_numpy_array_inputs_accepted(self):
        import numpy as np

        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert cdf_at(values, 2) == 0.5
        assert fraction_above(values, 2) == 0.5
        assert percentile(values, 50) == 2.5
        with pytest.raises(ValueError, match="empty"):
            cdf_at(np.array([]), 1)

    def test_multidimensional_input_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            cdf_at([[1, 2], [3, 4]], 2)

    def test_histogram_fractions_empty(self):
        assert histogram_fractions([]) == []

    def test_cdf_table(self):
        table = cdf_table([1, 2, 3], [1.5, 3.0])
        assert table == [(1.5, pytest.approx(1 / 3)), (3.0, 1.0)]

    def test_histogram_fractions(self):
        rows = histogram_fractions([1, 1, 2])
        assert rows == [(1, 2, pytest.approx(2 / 3)), (2, 1, pytest.approx(1 / 3))]

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1))
    def test_cdf_monotone(self, values):
        points = empirical_cdf(values)
        fractions = [f for _x, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)


ROUTE_A = (10, 20, 30)
ROUTE_B = (10, 21, 30)
ROUTE_C = (10, 21, 31)


class TestPathMetrics:
    def test_traceroute_cardinality(self):
        sets = {1: frozenset({ROUTE_A, ROUTE_B}), 2: frozenset({ROUTE_B})}
        assert traceroute_cardinality(sets) == 2

    def test_lasthop_cardinality(self):
        sets = {1: frozenset({ROUTE_A, ROUTE_B}), 2: frozenset({ROUTE_C})}
        assert lasthop_cardinality(sets) == 2  # last hops: 30, 31

    def test_lasthop_ignores_unresponsive(self):
        sets = {1: frozenset({(10, None)})}
        assert lasthop_cardinality(sets) == 0

    def test_common_router_depth(self):
        routes = {ROUTE_A, ROUTE_B}
        # Hop 0 common (10); hop 1 differs; hop 2 common (30) and deepest.
        assert common_router_depth(routes) == 2

    def test_common_router_depth_none(self):
        assert common_router_depth({(1, 2), (3, 4)}) is None

    def test_subpath_cardinality_collapses_prefix_diversity(self):
        # Routes differ only upstream of a common final router.
        sets = {1: frozenset({(1, 5, 9), (2, 5, 9)})}
        assert traceroute_cardinality(sets) == 2
        assert subpath_cardinality(sets) == 1

    def test_subpath_without_common_router(self):
        sets = {1: frozenset({(1, 2), (3, 4)})}
        assert subpath_cardinality(sets) == 2

    def test_per_destination_lasthops(self):
        sets = {7: frozenset({ROUTE_A, (10, 20, None)})}
        observations = per_destination_lasthops(sets)
        assert observations[7] == frozenset({30})

    def test_links_of_route(self):
        assert links_of_route((1, 2, 3)) == {(1, 2), (2, 3)}

    def test_links_skip_unresponsive(self):
        assert links_of_route((1, None, 3)) == set()
        assert links_of_route((1, 2, None, 4)) == {(1, 2)}

    def test_links_of_route_sets(self):
        sets = {1: frozenset({(1, 2)}), 2: frozenset({(2, 3)})}
        assert links_of_route_sets(sets) == {(1, 2), (2, 3)}
