"""Tests for rDNS pattern mining, sampling comparison and topology
discovery analysis."""

import random

import pytest

from repro.aggregation import AggregatedBlock
from repro.analysis import (
    check_negative_controls,
    discovery_curve,
    distinct_pattern_count,
    groups_from_blocks,
    groups_from_slash24s,
    matches_signature,
    mine_block_patterns,
    signature_of,
    signature_regex,
    total_links,
)
from repro.analysis.sampling import (
    block_active_addresses,
    compare_sampling,
    simple_random_sample,
    stratified_sample,
)
from repro.net import Prefix


class TestSignatures:
    def test_signature_of(self):
        assert (
            signature_of("m3-1-2-3-4.cust.tele2.se")
            == "m#-#-#-#-#.cust.tele#.se"
        )

    def test_signature_regex_matches_same_scheme(self):
        signature = signature_of("ip1-2-3-4.denver.example-isp.net")
        assert matches_signature(
            signature, "ip9-9-9-9.denver.example-isp.net"
        )

    def test_signature_regex_rejects_other_scheme(self):
        signature = signature_of("ip1-2-3-4.denver.example-isp.net")
        assert not matches_signature(
            signature, "server-1-2-3-4.dc0.examplehosting.net"
        )

    def test_no_digits(self):
        assert signature_of("host.example.com") == "host.example.com"

    def test_regex_is_anchored(self):
        regex = signature_regex("a#b")
        assert regex.match("a7b")
        assert not regex.match("xa7b")
        assert not regex.match("a7bx")


class TestMining:
    def _cellular_block(self, internet):
        truth = internet.ground_truth
        for pod in internet.pods:
            if pod.cellular and pod.slash24s():
                return AggregatedBlock(
                    block_id=0,
                    lasthop_set=frozenset(pod.lasthop_router_ids),
                    slash24s=tuple(pod.slash24s()),
                )
        pytest.fail("no cellular pod")

    def test_mine_dominant_pattern(self, shared_internet, shared_snapshot):
        block = self._cellular_block(shared_internet)
        mined = mine_block_patterns(
            shared_internet, block, shared_snapshot, label="cell"
        )
        assert mined.names_seen > 0
        dominant = mined.dominant(min_fraction=0.5)
        assert dominant is not None
        assert mined.coverage(dominant) >= 0.5

    def test_negative_controls_clean(self, shared_internet, shared_snapshot):
        block = self._cellular_block(shared_internet)
        mined = mine_block_patterns(
            shared_internet, block, shared_snapshot
        )
        dominant = mined.dominant()
        from repro.netsim.rdns import router_rdns_name

        router_names = [
            router_rdns_name(r.label) for r in shared_internet.topology
        ]
        control = check_negative_controls(dominant, router_names, [])
        assert control.clean

    def test_distinct_pattern_count(self, shared_internet, shared_snapshot):
        eligible = shared_snapshot.eligible_slash24s()
        addrs = []
        for slash24 in eligible[:10]:
            addrs.extend(shared_snapshot.active_in(slash24)[:5])
        count = distinct_pattern_count(shared_internet, addrs)
        assert count >= 1


class TestSampling:
    def test_stratified_one_per_block(self):
        per_block = [[1, 2, 3], [10], [20, 21]]
        sample = stratified_sample(per_block, random.Random(1))
        assert len(sample) == 3
        assert sample[1] == 10

    def test_simple_random_sample_size(self):
        population = list(range(100))
        sample = simple_random_sample(population, 10, random.Random(1))
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_simple_random_sample_caps_at_population(self):
        assert len(simple_random_sample([1, 2], 10, random.Random(1))) == 2

    def test_compare_sampling(self, shared_internet, shared_snapshot):
        truth = shared_internet.ground_truth
        blocks = [
            AggregatedBlock(
                block_id=i,
                lasthop_set=tb.lasthop_router_ids,
                slash24s=tb.slash24s,
            )
            for i, tb in enumerate(truth.true_blocks()[:40])
        ]
        comparison = compare_sampling(
            shared_internet, blocks, shared_snapshot,
            repetitions=4, multipliers=(1, 2), seed=1,
        )
        rows = comparison.normalized_rows()
        assert rows[0] == ("Stratified", 1.0)
        assert len(rows) == 3
        assert 0.0 < comparison.stratified_population_coverage <= 1.0

    def test_block_active_addresses_drops_empty(self, shared_internet,
                                                shared_snapshot):
        empty_block = AggregatedBlock(
            block_id=0,
            lasthop_set=frozenset({1}),
            slash24s=(Prefix.parse("99.99.99.0/24"),),
        )
        assert block_active_addresses([empty_block], shared_snapshot) == []


class TestDiscovery:
    DATASET = {
        # /24 A (10.0.0.x): two destinations, shared + unique links.
        0x0A000001: frozenset({(1, 2, 3)}),
        0x0A000002: frozenset({(1, 2, 4)}),
        # /24 B (10.0.1.x): one destination.
        0x0A000101: frozenset({(1, 5, 6)}),
    }

    def test_total_links(self):
        links = total_links(self.DATASET)
        assert links == {(1, 2), (2, 3), (2, 4), (1, 5), (5, 6)}

    def test_groups_from_slash24s(self):
        groups = groups_from_slash24s(self.DATASET)
        assert len(groups) == 2

    def test_groups_from_blocks(self):
        blocks = [[Prefix.parse("10.0.0.0/24"), Prefix.parse("10.0.1.0/24")]]
        groups = groups_from_blocks(self.DATASET, blocks)
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_curve_reaches_one(self):
        curve = discovery_curve(
            self.DATASET,
            groups_from_slash24s(self.DATASET),
            slash24_count=2,
            strategy="/24",
            rng=random.Random(1),
        )
        assert curve.points[-1][1] == pytest.approx(1.0)

    def test_curve_monotone(self):
        curve = discovery_curve(
            self.DATASET,
            groups_from_slash24s(self.DATASET),
            slash24_count=2,
            strategy="/24",
            rng=random.Random(1),
        )
        ratios = [ratio for _x, ratio in curve.points]
        assert ratios == sorted(ratios)

    def test_ratio_at_or_below(self):
        curve = discovery_curve(
            self.DATASET,
            groups_from_slash24s(self.DATASET),
            slash24_count=2,
            strategy="/24",
            rng=random.Random(1),
        )
        assert curve.ratio_at_or_below(0.0) == 0.0
        assert curve.ratio_at_or_below(100.0) == pytest.approx(1.0)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            discovery_curve({}, [], 1, "x", random.Random(1))
