"""Tests for the confidence table and termination policies."""

import pytest

from repro.core import (
    ConfidenceTable,
    ExhaustivePolicy,
    ReprobePolicy,
    StopReason,
    TerminationPolicy,
    single_lasthop_table,
)
from repro.probing import probes_required


def fs(*values):
    return frozenset(values)


def _single_lasthop_observations(n, lasthop=1):
    return {100 + i: fs(lasthop) for i in range(n)}


def _interleaved_observations(n):
    """Alternating last hops → non-hierarchical grouping for n >= 4."""
    return {100 + i: fs(1 if i % 2 == 0 else 2) for i in range(n)}


def _nested_observations():
    """Group 1 brackets group 2 → hierarchical (inclusive)."""
    return {
        100: fs(1), 110: fs(2), 120: fs(2), 130: fs(1),
    }


class TestConfidenceTable:
    def test_record_and_query(self):
        table = ConfidenceTable(min_trials=2)
        table.record(2, 10, True)
        assert table.confidence(2, 10) is None  # below min_trials
        table.record(2, 10, True)
        assert table.confidence(2, 10) == 1.0

    def test_required_probes(self):
        table = ConfidenceTable(min_trials=1)
        table.record(2, 10, False)
        table.record(2, 20, True)
        table.record(2, 30, True)
        assert table.required_probes(2, level=0.95) == 20

    def test_required_probes_unreachable(self):
        table = ConfidenceTable(min_trials=1)
        table.record(2, 10, False)
        assert table.required_probes(2) is None

    def test_build_from_single_lasthop_blocks(self):
        observations = _single_lasthop_observations(12)
        table = ConfidenceTable.build(
            {"block": observations}, samples_per_block=8, min_trials=4
        )
        # Cardinality 1 is always recognised.
        assert table.required_probes(1) == 4

    def test_build_from_interleaved_blocks(self):
        observations = _interleaved_observations(16)
        table = ConfidenceTable.build(
            {"block": observations}, samples_per_block=16, min_trials=8
        )
        # With alternating groups, recognition improves with subset
        # size; at n=16 (everything) success is certain.
        grid = table.grid()
        assert grid
        full = [row for row in grid if row[1] == 16]
        assert full and full[0][2] == 1.0

    def test_grid_sorted(self):
        table = single_lasthop_table()
        grid = table.grid()
        assert grid == sorted(grid)


class TestTerminationPolicy:
    def test_non_hierarchical_stop(self):
        policy = TerminationPolicy()
        reason = policy.should_stop(_interleaved_observations(6))
        assert reason is StopReason.NON_HIERARCHICAL

    def test_single_lasthop_stop_at_six(self):
        policy = TerminationPolicy()
        assert policy.should_stop(_single_lasthop_observations(5)) is None
        assert (
            policy.should_stop(_single_lasthop_observations(6))
            is StopReason.SINGLE_LASTHOP
        )

    def test_identical_multi_sets_stop_as_non_hierarchical(self):
        policy = TerminationPolicy()
        observations = {100 + i: fs(1, 2) for i in range(6)}
        assert (
            policy.should_stop(observations)
            is StopReason.NON_HIERARCHICAL
        )

    def test_confidence_stop(self):
        table = ConfidenceTable(min_trials=1)
        table.record(2, 5, True)
        policy = TerminationPolicy(
            confidence_table=table, stop_on_non_hierarchical=False,
            single_lasthop_rule=False,
        )
        nested = _nested_observations()
        assert policy.should_stop(nested) is None  # only 4 probed
        more = dict(nested)
        more[140] = fs(1)
        assert policy.should_stop(more) is StopReason.CONFIDENCE_REACHED

    def test_rules_can_be_disabled(self):
        policy = TerminationPolicy(
            single_lasthop_rule=False, stop_on_non_hierarchical=False
        )
        assert policy.should_stop(_single_lasthop_observations(10)) is None
        assert policy.should_stop(_interleaved_observations(10)) is None

    def test_empty_observations_never_stop(self):
        assert TerminationPolicy().should_stop({}) is None

    def test_required_probes_helper(self):
        table = ConfidenceTable(min_trials=1)
        table.record(2, 7, True)
        policy = TerminationPolicy(confidence_table=table)
        assert policy.required_probes(_nested_observations()) == 7
        assert TerminationPolicy().required_probes({}) is None


class TestReprobePolicy:
    def test_stops_at_enumeration_budget(self):
        policy = ReprobePolicy()
        # One last hop observed → budget is probes_required(1) = 6.
        assert policy.should_stop(_single_lasthop_observations(5)) is None
        assert (
            policy.should_stop(_single_lasthop_observations(6))
            is StopReason.ENUMERATION_COMPLETE
        )

    def test_budget_grows_with_cardinality(self):
        policy = ReprobePolicy()
        observations = _interleaved_observations(10)
        # Two last hops → needs probes_required(2) = 11 destinations.
        assert policy.should_stop(observations) is None
        observations = _interleaved_observations(probes_required(2))
        assert (
            policy.should_stop(observations)
            is StopReason.ENUMERATION_COMPLETE
        )

    def test_does_not_stop_on_non_hierarchy(self):
        policy = ReprobePolicy()
        assert policy.should_stop(_interleaved_observations(6)) is None


class TestExhaustivePolicy:
    def test_never_stops(self):
        policy = ExhaustivePolicy()
        assert policy.should_stop(_single_lasthop_observations(50)) is None
        assert policy.should_stop(_interleaved_observations(50)) is None
