"""Crash consistency of the lease-based distributed executor.

The contract under attack: a ``workers=N`` campaign in which a worker
is SIGKILLed *mid-batch* (lease held, some /24s checkpointed, some not)
must still complete — surviving workers re-claim the lapsed lease — and
the result must be bit-identical to the serial run: measurements, their
insertion order, probe accounting, store records, and the simulator's
end-of-campaign clock.
"""

import multiprocessing
import os

import pytest

from repro.core import TerminationPolicy, run_campaign
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.obs.metrics import MetricsRegistry
from repro.probing import scan
from repro.store import CampaignCache, MeasurementStore
from repro.store.lease import LeaseLedger

SEED = 5
MAX_DESTINATIONS = 48
#: Short enough that a killed worker's lease is reclaimed in test time,
#: long enough that a *live* worker can never lapse by accident.
TEST_TTL = "2.0"


def _fresh_internet():
    internet = SimulatedInternet.from_config(tiny_scenario(seed=11))
    snapshot = scan(internet)
    return internet, snapshot


def _run(internet, snapshot, slash24s, workers=1, store=None, registry=None):
    return run_campaign(
        internet,
        TerminationPolicy(),
        slash24s=slash24s,
        snapshot=snapshot,
        seed=SEED,
        max_destinations_per_slash24=MAX_DESTINATIONS,
        workers=workers,
        store=store,
        metrics=registry,
    )


@pytest.fixture(scope="module")
def selection():
    internet, snapshot = _fresh_internet()
    return snapshot.eligible_slash24s()[:24]


@pytest.fixture(scope="module")
def serial_state(selection):
    """(result, clock, probe_count) of the uninterrupted serial run."""
    internet, snapshot = _fresh_internet()
    result = _run(internet, snapshot, selection)
    return result, internet.clock_seconds, internet.probe_count


def _bound_cache(store, internet, clock_base):
    return CampaignCache.bind(
        store, internet, TerminationPolicy(), SEED, clock_base,
        MAX_DESTINATIONS,
    )


class TestWorkerDeathRecovery:
    def test_killed_worker_mid_batch_bit_identical(
        self, selection, serial_state, tmp_path, monkeypatch
    ):
        """Kill worker 0 after its first checkpoint: its lease lapses
        mid-batch, a surviving worker steals it, and everything the
        serial run would have produced is reproduced exactly."""
        serial_result, serial_clock, serial_probes = serial_state
        monkeypatch.setenv("REPRO_LEASE_TTL", TEST_TTL)
        monkeypatch.setenv("REPRO_LEASE_KILL", "0:1")
        internet, snapshot = _fresh_internet()
        registry = MetricsRegistry()
        with MeasurementStore(str(tmp_path / "store")) as store:
            result = _run(
                internet, snapshot, selection,
                workers=3, store=store, registry=registry,
            )
        assert result.measurements == serial_result.measurements
        assert list(result.measurements) == list(serial_result.measurements)
        assert result.probes_used == serial_result.probes_used
        assert internet.clock_seconds == serial_clock
        assert internet.probe_count == serial_probes
        # The death was not silent: the worker is reported lost, and
        # its lease was re-claimed by someone.
        assert registry.counter_value(
            "campaign.parallel.lease.workers_lost"
        ) == 1
        claims = registry.counter_value("campaign.parallel.lease.claims")
        batches = registry.counter_value("campaign.parallel.lease.batches")
        assert claims > batches  # at least one batch was claimed twice

    def test_lease_lapse_recorded_in_ledger(
        self, selection, tmp_path, monkeypatch
    ):
        """The ledger itself shows the steal (or parent takeover): the
        killed worker's batch ends DONE under a different owner."""
        monkeypatch.setenv("REPRO_LEASE_TTL", TEST_TTL)
        monkeypatch.setenv("REPRO_LEASE_KILL", "0:1")
        internet, snapshot = _fresh_internet()
        clock_base = internet.clock_seconds
        with MeasurementStore(str(tmp_path / "store")) as store:
            _run(internet, snapshot, selection, workers=3, store=store)
            cache = _bound_cache(store, internet, clock_base)
            with LeaseLedger(store.root, cache.campaign) as ledger:
                state = ledger.state()
        assert state is not None
        assert state.all_done
        counts = state.counts()
        assert counts["steals"] >= 1
        assert counts["slash24s_done"] == len(selection)

    def test_store_records_bit_identical_to_serial(
        self, selection, tmp_path, monkeypatch
    ):
        """Byte-for-byte: the record documents a kill-recovery campaign
        leaves in its store equal the serial campaign's."""
        serial_internet, serial_snapshot = _fresh_internet()
        serial_clock_base = serial_internet.clock_seconds
        with MeasurementStore(str(tmp_path / "serial")) as serial_store:
            _run(serial_internet, serial_snapshot, selection,
                 store=serial_store)
            serial_cache = _bound_cache(
                serial_store, serial_internet, serial_clock_base
            )
            serial_docs = {
                str(slash24): serial_store.get(
                    serial_cache.key_for(
                        slash24, serial_snapshot.active_in(slash24)
                    )
                )
                for slash24 in selection
            }

        monkeypatch.setenv("REPRO_LEASE_TTL", TEST_TTL)
        monkeypatch.setenv("REPRO_LEASE_KILL", "0:1")
        internet, snapshot = _fresh_internet()
        clock_base = internet.clock_seconds
        with MeasurementStore(str(tmp_path / "killed")) as store:
            _run(internet, snapshot, selection, workers=3, store=store)
            cache = _bound_cache(store, internet, clock_base)
            docs = {
                str(slash24): store.get(
                    cache.key_for(slash24, snapshot.active_in(slash24))
                )
                for slash24 in selection
            }
        assert docs == serial_docs

    def test_all_workers_dead_parent_takes_over(
        self, selection, serial_state, tmp_path, monkeypatch
    ):
        """Every worker dies: nobody is left to steal, so the parent
        reclaims the leftovers itself and the campaign still completes,
        bit-identical."""
        serial_result, serial_clock, serial_probes = serial_state
        monkeypatch.setenv("REPRO_LEASE_TTL", TEST_TTL)
        monkeypatch.setenv("REPRO_LEASE_KILL", "0:1,1:1")
        internet, snapshot = _fresh_internet()
        registry = MetricsRegistry()
        with MeasurementStore(str(tmp_path / "store")) as store:
            result = _run(
                internet, snapshot, selection,
                workers=2, store=store, registry=registry,
            )
        assert registry.counter_value("campaign.parallel.lease.takeover") == 1
        assert registry.counter_value(
            "campaign.parallel.lease.workers_lost"
        ) == 2
        assert result.measurements == serial_result.measurements
        assert result.probes_used == serial_result.probes_used
        assert internet.clock_seconds == serial_clock
        assert internet.probe_count == serial_probes

    def test_sole_survivor_finishes_everything(
        self, selection, serial_state, monkeypatch
    ):
        """workers=2 where worker 0 dies immediately — and no store is
        attached, so recovery runs over the ephemeral coordination
        store: worker 1 finishes the whole campaign via steals."""
        serial_result, serial_clock, serial_probes = serial_state
        monkeypatch.setenv("REPRO_LEASE_TTL", TEST_TTL)
        monkeypatch.setenv("REPRO_LEASE_KILL", "0:1")
        internet, snapshot = _fresh_internet()
        result = _run(internet, snapshot, selection, workers=2)
        assert result.measurements == serial_result.measurements
        assert result.probes_used == serial_result.probes_used
        assert internet.clock_seconds == serial_clock
        assert internet.probe_count == serial_probes


class TestResumability:
    def test_second_run_replays_from_store(
        self, selection, serial_state, tmp_path, monkeypatch
    ):
        """A campaign resumed over the store a killed run left behind
        replays every stored /24 and re-measures nothing."""
        serial_result, _, _ = serial_state
        monkeypatch.setenv("REPRO_LEASE_TTL", TEST_TTL)
        monkeypatch.setenv("REPRO_LEASE_KILL", "0:1")
        with MeasurementStore(str(tmp_path / "store")) as store:
            internet, snapshot = _fresh_internet()
            _run(internet, snapshot, selection, workers=3, store=store)
        monkeypatch.delenv("REPRO_LEASE_KILL")
        with MeasurementStore(str(tmp_path / "store")) as store:
            internet, snapshot = _fresh_internet()
            base_probes = internet.probe_count
            warm = _run(
                internet, snapshot, selection, workers=3, store=store
            )
            assert internet.probe_count == base_probes  # pure replay
        assert warm.measurements == serial_result.measurements


def _concurrent_appender(root, start, count):
    """Child-process body for the two-writer locking test."""
    from repro.store import MeasurementStore, artifact_record

    with MeasurementStore(root, fsync=False) as store:
        for index in range(start, start + count):
            store.put(artifact_record(f"sc::k{index}", index))


class TestConcurrentStoreWriters:
    def test_two_processes_appending_same_store(self, tmp_path):
        """Two unrelated processes appending to the same store must not
        interleave frames: advisory locking serializes every append, so
        afterwards the store verifies clean and holds every record."""
        root = str(tmp_path / "shared")
        MeasurementStore(root).close()  # create layout up front
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        writers = [
            context.Process(
                target=_concurrent_appender, args=(root, base, 50)
            )
            for base in (0, 50)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join()
        assert all(proc.exitcode == 0 for proc in writers)
        with MeasurementStore(root) as store:
            report = store.verify()
            assert report.clean
            assert len(store) == 100
            for index in range(100):
                document = store.get(f"sc::k{index}")
                assert document is not None
                assert document["value"] == index
