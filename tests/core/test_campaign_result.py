"""CampaignResult lookup/slicing helpers (subset, iteration, get)."""

import pytest

from repro.core import CampaignResult, Category
from repro.core.classifier import Slash24Measurement
from repro.net.prefix import Prefix


def measurement(network, probes=5):
    return Slash24Measurement(
        slash24=Prefix.parse(f"{network}/24"),
        category=Category.TOO_FEW_ACTIVE,
        probes_used=probes,
    )


@pytest.fixture
def result():
    campaign = CampaignResult()
    campaign.add(measurement("10.0.0.0", probes=2))
    campaign.add(measurement("10.0.1.0", probes=3))
    campaign.add(measurement("10.0.2.0", probes=5))
    return campaign


class TestLookup:
    def test_contains(self, result):
        assert Prefix.parse("10.0.0.0/24") in result
        assert Prefix.parse("10.9.9.0/24") not in result

    def test_get(self, result):
        found = result.get(Prefix.parse("10.0.1.0/24"))
        assert found is not None
        assert found.probes_used == 3
        assert result.get(Prefix.parse("10.9.9.0/24")) is None

    def test_iteration_in_insertion_order(self, result):
        networks = [m.slash24.network for m in result]
        assert networks == sorted(networks)
        assert len(list(result)) == 3

    def test_prefixes(self, result):
        assert result.prefixes() == [
            Prefix.parse("10.0.0.0/24"),
            Prefix.parse("10.0.1.0/24"),
            Prefix.parse("10.0.2.0/24"),
        ]


class TestSubset:
    def test_subset_keeps_requested(self, result):
        keep = [Prefix.parse("10.0.2.0/24"), Prefix.parse("10.0.0.0/24")]
        sliced = result.subset(keep)
        assert sliced.total == 2
        assert sliced.prefixes() == keep  # requested order, not original
        assert sliced.probes_used == 7  # re-accumulated from kept /24s

    def test_subset_missing_prefix_raises(self, result):
        with pytest.raises(KeyError, match="10.9.9.0/24"):
            result.subset([Prefix.parse("10.9.9.0/24")])

    def test_subset_is_independent(self, result):
        sliced = result.subset([Prefix.parse("10.0.0.0/24")])
        sliced.add(measurement("10.8.0.0"))
        assert Prefix.parse("10.8.0.0/24") not in result

    def test_empty_subset(self, result):
        sliced = result.subset([])
        assert sliced.total == 0
        assert sliced.probes_used == 0
