"""Campaign-level tests: running Hobbit over many /24s."""

import pytest

from repro.core import (
    Category,
    TerminationPolicy,
    run_campaign,
)
from repro.probing import scan


@pytest.fixture(scope="module")
def campaign_result():
    from repro.netsim import SimulatedInternet, tiny_scenario

    internet = SimulatedInternet.from_config(tiny_scenario(seed=7))
    snapshot = scan(internet)
    slash24s = snapshot.eligible_slash24s()[:80]
    result = run_campaign(
        internet,
        TerminationPolicy(),
        slash24s=slash24s,
        snapshot=snapshot,
        seed=5,
        max_destinations_per_slash24=48,
    )
    return internet, result


class TestCampaign:
    def test_measures_all_selected(self, campaign_result):
        _internet, result = campaign_result
        assert result.total == 80

    def test_category_counts_sum(self, campaign_result):
        _internet, result = campaign_result
        counts = result.category_counts()
        assert sum(counts.values()) == result.total

    def test_probes_accumulated(self, campaign_result):
        _internet, result = campaign_result
        assert result.probes_used > 0
        assert result.probes_used == sum(
            m.probes_used for m in result.measurements.values()
        )

    def test_homogeneous_subset_of_analyzable(self, campaign_result):
        _internet, result = campaign_result
        homogeneous = result.homogeneous()
        analyzable = result.analyzable()
        assert len(homogeneous) <= len(analyzable)
        assert 0.0 <= result.homogeneous_fraction_of_analyzable() <= 1.0

    def test_accuracy_against_ground_truth(self, campaign_result):
        internet, result = campaign_result
        truth = internet.ground_truth
        correct = 0
        judged = 0
        for slash24, measurement in result.measurements.items():
            if not measurement.category.analyzable:
                continue
            judged += 1
            if measurement.is_homogeneous == truth.is_homogeneous(slash24):
                correct += 1
        assert judged > 40
        assert correct / judged > 0.85

    def test_lasthop_sets_only_for_homogeneous(self, campaign_result):
        _internet, result = campaign_result
        sets = result.lasthop_sets()
        homogeneous = {m.slash24 for m in result.homogeneous()}
        assert set(sets) <= homogeneous
        assert all(sets.values())

    def test_by_category_partition(self, campaign_result):
        _internet, result = campaign_result
        total = sum(
            len(result.by_category(category)) for category in Category
        )
        assert total == result.total
