"""Golden parity: compiled/batched engine vs the reference engine.

``REPRO_REFERENCE_ENGINE=1`` is the escape hatch that forces the
pre-optimisation serial implementation (trie-walk path resolution,
probe-at-a-time stochastic draws). The optimised engine's entire
correctness claim is that it is *bit-identical* to that reference, so a
whole campaign — measurements, canonical store records, probe
accounting, simulator end state — must not differ in a single byte
between the two engines.
"""

import pytest

from repro.core import TerminationPolicy, run_campaign
from repro.core.fastengine import CAMPAIGN_ENGINE_ENV
from repro.net.prefix import Prefix
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.netsim.routing import (
    REFERENCE_ENGINE_ENV,
    reference_engine_enabled,
)
from repro.probing import scan
from repro.store import MeasurementStore
from repro.store.codec import canonical_json_bytes, measurement_to_dict

SCENARIO_SEED = 11
CAMPAIGN_SEED = 5
MAX_DESTINATIONS = 32
SLASH24S = 12


class _EngineRun:
    """One full campaign under one engine, store records included."""

    def __init__(self, reference: bool, store_root):
        import os

        previous = os.environ.get(REFERENCE_ENGINE_ENV)
        previous_campaign = os.environ.get(CAMPAIGN_ENGINE_ENV)
        # This suite exercises the compiled *forwarding* plane against
        # its reference; keep the object-path campaign engine so the
        # batched probe path (asserted below) actually runs. The
        # columnar campaign engine has its own golden suite.
        os.environ[CAMPAIGN_ENGINE_ENV] = "object"
        if reference:
            os.environ[REFERENCE_ENGINE_ENV] = "1"
        else:
            os.environ.pop(REFERENCE_ENGINE_ENV, None)
        try:
            internet = SimulatedInternet.from_config(
                tiny_scenario(seed=SCENARIO_SEED)
            )
            assert internet.forwarder.compiled_enabled != reference
            snapshot = scan(internet)
            selection = snapshot.eligible_slash24s()[:SLASH24S]
            with MeasurementStore(store_root) as store:
                self.result = run_campaign(
                    internet,
                    TerminationPolicy(),
                    slash24s=selection,
                    snapshot=snapshot,
                    seed=CAMPAIGN_SEED,
                    max_destinations_per_slash24=MAX_DESTINATIONS,
                    store=store,
                )
                self.records = {
                    document["key"]: document
                    for document in store.documents()
                }
            self.selection = selection
            self.clock_seconds = internet.clock_seconds
            self.probe_count = internet.probe_count
            self.stats = internet.stats()
        finally:
            if previous is None:
                os.environ.pop(REFERENCE_ENGINE_ENV, None)
            else:
                os.environ[REFERENCE_ENGINE_ENV] = previous
            if previous_campaign is None:
                os.environ.pop(CAMPAIGN_ENGINE_ENV, None)
            else:
                os.environ[CAMPAIGN_ENGINE_ENV] = previous_campaign


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory):
    return _EngineRun(True, tmp_path_factory.mktemp("ref-store") / "s")


@pytest.fixture(scope="module")
def compiled_run(tmp_path_factory):
    return _EngineRun(False, tmp_path_factory.mktemp("fast-store") / "s")


class TestEscapeHatch:
    def test_env_toggles_engine(self, monkeypatch):
        monkeypatch.delenv(REFERENCE_ENGINE_ENV, raising=False)
        assert not reference_engine_enabled()
        monkeypatch.setenv(REFERENCE_ENGINE_ENV, "1")
        assert reference_engine_enabled()
        # Explicitly disabled spellings mean "optimised engine".
        for value in ("0", "", "false", "no", "off"):
            monkeypatch.setenv(REFERENCE_ENGINE_ENV, value)
            assert not reference_engine_enabled()

    def test_reference_engine_sends_no_batches(self, reference_run):
        assert reference_run.stats["probe_batches"] == 0
        assert reference_run.stats["batched_probes"] == 0

    def test_compiled_engine_batches(self, compiled_run):
        assert compiled_run.stats["batched_probes"] > 0


class TestGoldenParity:
    def test_same_selection(self, reference_run, compiled_run):
        assert reference_run.selection == compiled_run.selection
        assert len(reference_run.selection) == SLASH24S

    def test_measurements_bit_identical(self, reference_run, compiled_run):
        fast = compiled_run.result.measurements
        slow = reference_run.result.measurements
        assert list(fast) == list(slow)
        for slash24 in slow:
            # Dataclass equality first (clear diffs on failure)...
            assert fast[slash24] == slow[slash24], slash24
            # ...then the canonical store encoding, byte for byte.
            assert canonical_json_bytes(
                measurement_to_dict(fast[slash24])
            ) == canonical_json_bytes(measurement_to_dict(slow[slash24]))

    def test_probe_accounting_identical(self, reference_run, compiled_run):
        assert (
            compiled_run.result.probes_used
            == reference_run.result.probes_used
        )
        assert compiled_run.probe_count == reference_run.probe_count

    def test_simulator_end_state_identical(self, reference_run, compiled_run):
        assert compiled_run.clock_seconds == reference_run.clock_seconds

    def test_category_counts_identical(self, reference_run, compiled_run):
        assert (
            compiled_run.result.category_counts()
            == reference_run.result.category_counts()
        )

    def test_store_fingerprints_identical(self, reference_run, compiled_run):
        """The store keys cover every input fingerprint (scenario,
        policy, seed, clock base, active list); the engines must agree
        on all of them and on every stored byte."""
        assert set(compiled_run.records) == set(reference_run.records)
        assert len(compiled_run.records) >= SLASH24S
        for key, document in reference_run.records.items():
            fast_document = compiled_run.records[key]
            assert canonical_json_bytes(fast_document) == (
                canonical_json_bytes(document)
            ), key

    def test_cross_engine_store_warm_rerun(
        self, reference_run, tmp_path_factory
    ):
        """A store written by the reference engine satisfies a
        compiled-engine rerun without a single probe — the fingerprints
        embed no engine identity, so caches are interchangeable."""
        import os

        root = tmp_path_factory.mktemp("cross-store") / "s"
        with MeasurementStore(root) as store:
            for document in reference_run.records.values():
                store.put(dict(document))
        os.environ.pop(REFERENCE_ENGINE_ENV, None)
        internet = SimulatedInternet.from_config(
            tiny_scenario(seed=SCENARIO_SEED)
        )
        snapshot = scan(internet)
        with MeasurementStore(root) as store:
            result = run_campaign(
                internet,
                TerminationPolicy(),
                slash24s=reference_run.selection,
                snapshot=snapshot,
                seed=CAMPAIGN_SEED,
                max_destinations_per_slash24=MAX_DESTINATIONS,
                store=store,
            )
        assert internet.probe_count == 0
        assert result.measurements == reference_run.result.measurements
