"""Golden parity for the columnar campaign path.

The columnar fast engine (``core.fastengine``) and the columnar result
representation (``core.columnar``) must be *bit-identical* to the
object path: same measurements (through the canonical store codec,
byte for byte), same probe accounting, same store records, same
simulator end state — on tiny and small profiles, serial and with
workers=2. The object path stays available behind
``REPRO_CAMPAIGN_ENGINE=object`` / ``result_format="object"``; these
tests are what make the default safe.
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.core import CampaignResult, TerminationPolicy, run_campaign
from repro.core.classifier import CATEGORY_ORDER, Slash24Measurement
from repro.core.columnar import (
    RESULT_FORMAT_ENV,
    ColumnarCampaignResult,
    result_format_name,
)
from repro.core.fastengine import CAMPAIGN_ENGINE_ENV, campaign_engine_name
from repro.net.prefix import Prefix
from repro.netsim import SimulatedInternet, paper_scenario, tiny_scenario
from repro.probing import scan
from repro.store import MeasurementStore
from repro.store.codec import canonical_json_bytes, measurement_to_dict

CAMPAIGN_SEED = 77
MAX_DESTINATIONS = 32


def _scenario(profile):
    if profile == "tiny":
        return tiny_scenario(seed=13)
    return paper_scenario(scale=0.05, seed=13)


class _Run:
    """One campaign under one (engine, result format, workers) setup."""

    def __init__(self, profile, engine, result_format, workers, store_root,
                 slash24s=24):
        previous = os.environ.get(CAMPAIGN_ENGINE_ENV)
        os.environ[CAMPAIGN_ENGINE_ENV] = engine
        try:
            internet = SimulatedInternet.from_config(_scenario(profile))
            snapshot = scan(internet)
            self.selection = snapshot.eligible_slash24s()[:slash24s]
            with MeasurementStore(store_root) as store:
                self.result = run_campaign(
                    internet,
                    TerminationPolicy(),
                    slash24s=self.selection,
                    snapshot=snapshot,
                    seed=CAMPAIGN_SEED,
                    max_destinations_per_slash24=MAX_DESTINATIONS,
                    workers=workers,
                    store=store,
                    result_format=result_format,
                )
                self.records = {
                    document["key"]: document
                    for document in store.documents()
                }
            self.clock_seconds = internet.clock_seconds
            self.probe_count = internet.probe_count
        finally:
            if previous is None:
                os.environ.pop(CAMPAIGN_ENGINE_ENV, None)
            else:
                os.environ[CAMPAIGN_ENGINE_ENV] = previous


@pytest.fixture(scope="module", params=["tiny", "small"])
def profile(request):
    return request.param


@pytest.fixture(scope="module", params=[1, 2], ids=["serial", "workers2"])
def workers(request):
    return request.param


@pytest.fixture(scope="module")
def object_run(profile, workers, tmp_path_factory):
    return _Run(
        profile, "object", "object", workers,
        tmp_path_factory.mktemp("obj-store") / "s",
    )


@pytest.fixture(scope="module")
def columnar_run(profile, workers, tmp_path_factory):
    return _Run(
        profile, "columnar", "columnar", workers,
        tmp_path_factory.mktemp("col-store") / "s",
    )


class TestGoldenParity:
    def test_result_types(self, object_run, columnar_run):
        assert isinstance(object_run.result, CampaignResult)
        assert isinstance(columnar_run.result, ColumnarCampaignResult)

    def test_measurements_bit_identical(self, object_run, columnar_run):
        slow = object_run.result.measurements
        fast = columnar_run.result.measurements
        assert list(fast) == list(slow)
        for slash24 in slow:
            assert fast[slash24] == slow[slash24], slash24
            assert canonical_json_bytes(
                measurement_to_dict(fast[slash24])
            ) == canonical_json_bytes(measurement_to_dict(slow[slash24]))

    def test_probe_accounting_identical(self, object_run, columnar_run):
        assert (
            columnar_run.result.probes_used == object_run.result.probes_used
        )
        assert columnar_run.probe_count == object_run.probe_count

    def test_simulator_end_state_identical(self, object_run, columnar_run):
        assert columnar_run.clock_seconds == object_run.clock_seconds

    def test_summaries_identical(self, object_run, columnar_run):
        assert (
            columnar_run.result.category_counts()
            == object_run.result.category_counts()
        )
        assert columnar_run.result.lasthop_sets() == (
            object_run.result.lasthop_sets()
        )
        assert columnar_run.result.homogeneous_fraction_of_analyzable() == (
            object_run.result.homogeneous_fraction_of_analyzable()
        )

    def test_store_records_identical(self, object_run, columnar_run):
        """Store records written by the columnar campaign are
        byte-identical to the object path's."""
        assert set(columnar_run.records) == set(object_run.records)
        assert len(columnar_run.records) >= len(columnar_run.selection)
        for key, document in object_run.records.items():
            assert canonical_json_bytes(
                columnar_run.records[key]
            ) == canonical_json_bytes(document), key


class TestCrossFormatResume:
    """Satellite: columnar↔object store round-trips.

    A store written by one path must satisfy a resume under the other
    path without a single probe, replaying bit-identical measurements.
    """

    @pytest.mark.parametrize(
        "writer,reader",
        [("columnar", "object"), ("object", "columnar")],
    )
    def test_cross_format_warm_resume(
        self, writer, reader, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp(f"{writer}-to-{reader}") / "s"
        first = _Run("tiny", writer, writer, 1, root)
        previous = os.environ.get(CAMPAIGN_ENGINE_ENV)
        os.environ[CAMPAIGN_ENGINE_ENV] = reader
        try:
            internet = SimulatedInternet.from_config(_scenario("tiny"))
            snapshot = scan(internet)
            with MeasurementStore(root) as store:
                result = run_campaign(
                    internet,
                    TerminationPolicy(),
                    slash24s=first.selection,
                    snapshot=snapshot,
                    seed=CAMPAIGN_SEED,
                    max_destinations_per_slash24=MAX_DESTINATIONS,
                    store=store,
                    result_format=reader,
                )
        finally:
            if previous is None:
                os.environ.pop(CAMPAIGN_ENGINE_ENV, None)
            else:
                os.environ[CAMPAIGN_ENGINE_ENV] = previous
        assert internet.probe_count == 0  # pure replay
        assert list(result.measurements) == list(first.result.measurements)
        for slash24 in first.result.measurements:
            assert result.measurements[slash24] == (
                first.result.measurements[slash24]
            )


def _synthetic_columnar(rows):
    """A columnar result with ``rows`` synthetic /24 measurements."""
    result = ColumnarCampaignResult()
    for row in range(rows):
        network = (10 << 24) | (row << 8)
        dst = network + 7
        result.add(
            Slash24Measurement(
                slash24=Prefix(network, 24),
                category=CATEGORY_ORDER[row % len(CATEGORY_ORDER)],
                observations={dst: frozenset({network + 1})},
                destinations_probed=1,
                hosts_responsive=5,
                probes_used=9,
            )
        )
    result.columns()  # finalize
    return result


class TestSubsetScaling:
    """Satellite: ``subset`` of a large columnar result is O(selection)."""

    def test_subset_allocates_o_selection(self):
        rows = 100_000
        big = _synthetic_columnar(rows)
        picks = [Prefix((10 << 24) | (row << 8), 24) for row in range(64)]
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        view = big.subset(picks)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        allocated = sum(
            stat.size_diff for stat in after.compare_to(before, "filename")
            if stat.size_diff > 0
        )
        # 64 rows of fixed-width columns is ~2KB; the 100k-row pools
        # must be shared, not copied (they alone are >3MB).
        assert allocated < 256 * 1024, f"subset allocated {allocated} bytes"
        assert view.total == len(picks)
        assert view._arrays["dst_pool"] is big._arrays["dst_pool"]
        assert view._arrays["lh_pool"] is big._arrays["lh_pool"]

    def test_subset_contents(self):
        big = _synthetic_columnar(512)
        picks = [Prefix((10 << 24) | (row << 8), 24) for row in (3, 200, 17)]
        view = big.subset(picks)
        assert view.prefixes() == picks
        assert [m.slash24 for m in view] == picks
        for pick in picks:
            assert view.get(pick) == big.get(pick)
        assert view.probes_used == sum(big.get(p).probes_used for p in picks)
        with pytest.raises(KeyError):
            big.subset([Prefix(11 << 24, 24)])
        with pytest.raises(ValueError):
            big.subset([picks[0], picks[0]])

    def test_iteration_is_lazy(self):
        big = _synthetic_columnar(4096)
        iterator = iter(big)
        first = next(iterator)
        assert first.slash24 == Prefix(10 << 24, 24)
        # The mapping view materializes one measurement per access.
        view = big.measurements
        assert len(view) == 4096
        assert view[first.slash24] == first


class TestRoundTrip:
    def test_object_round_trip_exact(self):
        columnar = _synthetic_columnar(97)
        as_object = columnar.to_object()
        back = ColumnarCampaignResult.from_campaign_result(as_object)
        assert list(back) == list(columnar)
        for key in ("nets", "cats", "stops", "dests", "hosts", "probes"):
            assert np.array_equal(back.columns()[key], columnar.columns()[key])

    def test_duplicate_add_rejected(self):
        columnar = _synthetic_columnar(3)
        with pytest.raises(ValueError):
            columnar.add(next(iter(columnar)))

    def test_merge_disjoint(self):
        left = _synthetic_columnar(5)
        right = ColumnarCampaignResult()
        measurement = Slash24Measurement(
            slash24=Prefix(11 << 24, 24),
            category=CATEGORY_ORDER[0],
            observations={},
            destinations_probed=0,
            hosts_responsive=0,
            probes_used=2,
        )
        right.add(measurement)
        left.merge(right)
        assert left.total == 6
        with pytest.raises(ValueError):
            left.merge(right)


class TestFormatSelection:
    def test_env_selects_format(self, monkeypatch):
        monkeypatch.delenv(RESULT_FORMAT_ENV, raising=False)
        assert result_format_name() == "object"
        monkeypatch.setenv(RESULT_FORMAT_ENV, "columnar")
        assert result_format_name() == "columnar"
        assert result_format_name("object") == "object"  # override wins
        with pytest.raises(ValueError):
            result_format_name("parquet")

    def test_engine_env(self, monkeypatch):
        monkeypatch.delenv(CAMPAIGN_ENGINE_ENV, raising=False)
        assert campaign_engine_name() == "columnar"
        monkeypatch.setenv(CAMPAIGN_ENGINE_ENV, "object")
        assert campaign_engine_name() == "object"
        monkeypatch.setenv(CAMPAIGN_ENGINE_ENV, "reference")
        assert campaign_engine_name() == "object"
