"""Tests for the per-/24 classifier against the simulator's ground
truth."""

import random

import pytest

from repro.core import (
    Category,
    ExhaustivePolicy,
    ReprobePolicy,
    StopReason,
    TerminationPolicy,
    classify_observations,
    measure_slash24,
)
from repro.probing import Prober, scan


def fs(*values):
    return frozenset(values)


class TestClassifyObservations:
    def test_too_few(self):
        assert (
            classify_observations({1: fs(9)}) is Category.TOO_FEW_ACTIVE
        )

    def test_same_lasthop(self):
        observations = {100 + i: fs(9) for i in range(5)}
        assert classify_observations(observations) is Category.SAME_LASTHOP

    def test_identical_multi_sets_non_hierarchical(self):
        # Different last-hop routers, but every address reaches the
        # same set: per-flow load balancing → homogeneous.
        observations = {100 + i: fs(1, 2) for i in range(5)}
        assert (
            classify_observations(observations)
            is Category.NON_HIERARCHICAL
        )

    def test_non_hierarchical(self):
        observations = {
            100: fs(1), 101: fs(2), 102: fs(1), 103: fs(2),
        }
        assert (
            classify_observations(observations) is Category.NON_HIERARCHICAL
        )

    def test_hierarchical(self):
        observations = {
            100: fs(1), 101: fs(1), 150: fs(2), 151: fs(2),
        }
        assert classify_observations(observations) is Category.HIERARCHICAL

    def test_category_flags(self):
        assert Category.SAME_LASTHOP.homogeneous
        assert Category.NON_HIERARCHICAL.homogeneous
        assert not Category.HIERARCHICAL.homogeneous
        assert Category.HIERARCHICAL.analyzable
        assert not Category.TOO_FEW_ACTIVE.analyzable
        assert not Category.UNRESPONSIVE_LASTHOP.analyzable


class TestMeasureSlash24:
    def _measure(self, internet, snapshot, slash24, policy=None):
        prober = Prober(internet)
        return measure_slash24(
            prober,
            slash24,
            snapshot.active_in(slash24),
            policy or TerminationPolicy(),
            random.Random(1),
        )

    def test_ineligible_snapshot(self, internet, snapshot):
        slash24 = internet.universe_slash24s[0]
        prober = Prober(internet)
        result = measure_slash24(
            prober, slash24, [], TerminationPolicy(), random.Random(1)
        )
        assert result.category is Category.TOO_FEW_ACTIVE
        assert result.probes_used == 0

    def test_single_lasthop_pod_classified_same(self, internet, snapshot):
        truth = internet.ground_truth
        for slash24 in snapshot.eligible_slash24s():
            pods = truth.pods_of(slash24)
            if (
                len(pods) == 1
                and pods[0].lasthop_count == 1
                and not pods[0].unresponsive_lasthop
            ):
                result = self._measure(internet, snapshot, slash24)
                if result.category.analyzable:
                    assert result.category is Category.SAME_LASTHOP
                    assert result.stop_reason is StopReason.SINGLE_LASTHOP
                    return
        pytest.fail("no single-lasthop pod measured successfully")

    def test_perdest_pods_mostly_classified_homogeneous(
        self, internet, snapshot
    ):
        """Per-destination pods with K>=3 last hops are recognised as
        homogeneous most of the time (hash nesting can fool the
        end-state test occasionally — the paper's own failure mode)."""
        truth = internet.ground_truth
        verdicts = []
        for slash24 in snapshot.eligible_slash24s():
            pods = truth.pods_of(slash24)
            if (
                len(pods) == 1
                and pods[0].lasthop_count >= 3
                and pods[0].lasthop_mode == "per-destination"
                and not pods[0].unresponsive_lasthop
            ):
                result = self._measure(internet, snapshot, slash24)
                if result.category.analyzable:
                    verdicts.append(result.is_homogeneous)
                if len(verdicts) >= 6:
                    break
        assert len(verdicts) >= 3
        assert sum(verdicts) / len(verdicts) >= 0.5

    def test_unresponsive_pod(self, internet, snapshot):
        truth = internet.ground_truth
        for slash24 in snapshot.eligible_slash24s():
            pods = truth.pods_of(slash24)
            if len(pods) == 1 and pods[0].unresponsive_lasthop:
                result = self._measure(internet, snapshot, slash24)
                if result.hosts_responsive >= 4:
                    assert (
                        result.category is Category.UNRESPONSIVE_LASTHOP
                    )
                    assert result.lasthop_set == frozenset()
                    return
        pytest.fail("no unresponsive pod found")

    def test_split_slash24_not_homogeneous(self, internet, snapshot):
        truth = internet.ground_truth
        judged = []
        for slash24 in truth.split_slash24s():
            active = snapshot.active_in(slash24)
            if not active:
                continue
            result = self._measure(
                internet, snapshot, slash24, ExhaustivePolicy()
            )
            if result.category.analyzable:
                judged.append(result)
        assert judged, "no split /24 was analyzable"
        wrong = [m for m in judged if m.is_homogeneous]
        # The aligned sub-block structure should be detected as
        # hierarchical in the overwhelming majority of cases.
        assert len(wrong) <= len(judged) // 3

    def test_max_destinations_caps_probing(self, internet, snapshot):
        slash24 = snapshot.eligible_slash24s()[0]
        prober = Prober(internet)
        result = measure_slash24(
            prober,
            slash24,
            snapshot.active_in(slash24),
            ExhaustivePolicy(),
            random.Random(1),
            max_destinations=5,
        )
        assert result.destinations_probed <= 5

    def test_lasthop_set_addresses_are_routers(self, internet, snapshot):
        slash24 = snapshot.eligible_slash24s()[0]
        result = self._measure(internet, snapshot, slash24)
        for lasthop in result.lasthop_set:
            assert internet.topology.by_address(lasthop) is not None
