"""Tests for the Section 4.2 strict heterogeneity criteria."""

from repro.core import (
    analyze_sub_blocks as _analyze_sub_blocks,
    composition_distribution,
    format_composition,
)
from repro.net import parse


def analyze_sub_blocks(observations, **kwargs):
    kwargs.setdefault("min_observations", 4)
    return _analyze_sub_blocks(observations, **kwargs)


def fs(*values):
    return frozenset(values)


BASE = parse("10.0.0.0")


def obs(mapping):
    return {BASE + offset: fs(lasthop) for offset, lasthop in mapping.items()}


class TestStrictCriteria:
    def test_paper_example_aligned_split(self):
        # <X.2, X.125> and <X.129, X.254>: disjoint and aligned → very
        # likely heterogeneous (Section 4.2's example).
        observations = obs({2: 1, 125: 1, 129: 2, 254: 2})
        analysis = analyze_sub_blocks(observations)
        assert analysis.strictly_heterogeneous
        assert analysis.composition == (25, 25)

    def test_paper_example_unaligned(self):
        # Second group <X.127, X.254>: disjoint but the /24-wide
        # enclosing subnet of the second group contains the first.
        observations = obs({2: 1, 125: 1, 127: 2, 254: 2})
        analysis = analyze_sub_blocks(observations)
        assert not analysis.strictly_heterogeneous

    def test_single_group_not_heterogeneous(self):
        observations = obs({2: 1, 200: 1})
        assert not analyze_sub_blocks(observations).strictly_heterogeneous

    def test_inclusive_groups_rejected(self):
        observations = obs({2: 1, 254: 1, 100: 2, 120: 2})
        assert not analyze_sub_blocks(observations).strictly_heterogeneous

    def test_interleaved_groups_rejected(self):
        observations = obs({2: 1, 130: 1, 100: 2, 200: 2})
        assert not analyze_sub_blocks(observations).strictly_heterogeneous

    def test_three_way_split(self):
        # /25 + /26 + /26.
        observations = obs({2: 1, 120: 1, 130: 2, 190: 2, 195: 3, 250: 3})
        analysis = analyze_sub_blocks(observations)
        assert analysis.strictly_heterogeneous
        assert analysis.composition == (25, 26, 26)

    def test_sub_blocks_sorted(self):
        observations = obs({195: 3, 250: 3, 2: 1, 120: 1, 130: 2, 190: 2})
        analysis = analyze_sub_blocks(observations)
        networks = [block.network for block in analysis.sub_blocks]
        assert networks == sorted(networks)


class TestDistribution:
    def test_composition_distribution(self):
        analyses = [
            analyze_sub_blocks(obs({2: 1, 125: 1, 129: 2, 254: 2})),
            analyze_sub_blocks(obs({2: 1, 125: 1, 129: 2, 254: 2})),
            analyze_sub_blocks(
                obs({2: 1, 120: 1, 130: 2, 190: 2, 195: 3, 250: 3})
            ),
            analyze_sub_blocks(obs({2: 1, 200: 1})),  # not strict
        ]
        rows = composition_distribution(analyses)
        assert rows[0][0] == (25, 25)
        assert rows[0][1] == 2
        assert rows[0][2] == 2 / 3

    def test_empty_distribution(self):
        assert composition_distribution([]) == []

    def test_format_composition(self):
        assert format_composition((25, 26, 26)) == "{/25, /26, /26}"


class TestEvidenceGuards:
    def test_min_observations_guard(self):
        observations = obs({2: 1, 125: 1, 129: 2, 254: 2})
        assert not _analyze_sub_blocks(
            observations, min_observations=10
        ).strictly_heterogeneous
        assert _analyze_sub_blocks(
            observations, min_observations=4
        ).strictly_heterogeneous

    def test_min_group_size_guard(self):
        # A singleton group trivially aligns (its subnet is a /32).
        observations = obs({2: 1, 60: 1, 125: 1, 254: 2})
        assert not _analyze_sub_blocks(
            observations, min_observations=4
        ).strictly_heterogeneous
        assert _analyze_sub_blocks(
            observations, min_observations=4, min_group_size=1
        ).strictly_heterogeneous
