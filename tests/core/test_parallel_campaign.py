"""Determinism suite for the sharded campaign executor.

The campaign's contract after the per-/24 context change: a /24's
measurement is a pure function of (scenario, campaign seed, prefix), so
results are invariant under reordering, truncation, and the worker
count, and bit-identical between runs with the same seed.
"""

import pytest

from repro.core import (
    CampaignResult,
    Category,
    TerminationPolicy,
    run_campaign,
    run_campaign_parallel,
    slash24_seed,
)
from repro.core.classifier import Slash24Measurement
from repro.net.prefix import Prefix
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.probing import scan
from repro.probing.session import ProbeStats

SEED = 5
MAX_DESTINATIONS = 48


def _fresh_internet():
    internet = SimulatedInternet.from_config(tiny_scenario(seed=11))
    snapshot = scan(internet)
    return internet, snapshot


def _run(internet, snapshot, slash24s, workers=1):
    return run_campaign(
        internet,
        TerminationPolicy(),
        slash24s=slash24s,
        snapshot=snapshot,
        seed=SEED,
        max_destinations_per_slash24=MAX_DESTINATIONS,
        workers=workers,
    )


@pytest.fixture(scope="module")
def selection():
    internet, snapshot = _fresh_internet()
    return snapshot.eligible_slash24s()[:24]


@pytest.fixture(scope="module")
def serial_result(selection):
    internet, snapshot = _fresh_internet()
    return _run(internet, snapshot, selection)


class TestOrderIndependence:
    def test_reversed_selection_identical(self, selection, serial_result):
        internet, snapshot = _fresh_internet()
        reordered = _run(internet, snapshot, list(reversed(selection)))
        assert reordered.measurements == serial_result.measurements
        assert reordered.probes_used == serial_result.probes_used

    def test_truncated_selection_identical(self, selection, serial_result):
        """Measuring a /24 alone gives the same verdict as measuring it
        within the full campaign (the shared-RNG regression)."""
        internet, snapshot = _fresh_internet()
        solo = _run(internet, snapshot, selection[:1])
        assert (
            solo.measurements[selection[0]]
            == serial_result.measurements[selection[0]]
        )

    def test_same_seed_reproducible(self, selection, serial_result):
        internet, snapshot = _fresh_internet()
        again = _run(internet, snapshot, selection)
        assert again.measurements == serial_result.measurements
        assert again.probes_used == serial_result.probes_used

    def test_slash24_seed_stable(self):
        prefix = Prefix.parse("10.1.2.0/24")
        assert slash24_seed(1, prefix) == slash24_seed(1, prefix)
        assert slash24_seed(1, prefix) != slash24_seed(2, prefix)
        assert slash24_seed(1, prefix) != slash24_seed(
            1, Prefix.parse("10.1.3.0/24")
        )


class TestParallelEquivalence:
    @pytest.fixture(scope="class")
    def parallel_result(self, selection):
        internet, snapshot = _fresh_internet()
        return _run(internet, snapshot, selection, workers=4)

    def test_measurements_identical(self, serial_result, parallel_result):
        assert parallel_result.measurements == serial_result.measurements

    def test_insertion_order_identical(self, serial_result, parallel_result):
        assert list(parallel_result.measurements) == list(
            serial_result.measurements
        )

    def test_category_counts_identical(self, serial_result, parallel_result):
        assert (
            parallel_result.category_counts()
            == serial_result.category_counts()
        )

    def test_lasthop_sets_identical(self, serial_result, parallel_result):
        assert (
            parallel_result.lasthop_sets() == serial_result.lasthop_sets()
        )

    def test_probes_used_identical(self, serial_result, parallel_result):
        assert parallel_result.probes_used == serial_result.probes_used

    def test_simulator_end_state_identical(self, selection):
        serial_internet, serial_snapshot = _fresh_internet()
        _run(serial_internet, serial_snapshot, selection)
        parallel_internet, parallel_snapshot = _fresh_internet()
        _run(parallel_internet, parallel_snapshot, selection, workers=2)
        assert (
            parallel_internet.clock_seconds == serial_internet.clock_seconds
        )
        assert parallel_internet.probe_count == serial_internet.probe_count

    def test_parallel_entry_point(self, selection, serial_result):
        internet, snapshot = _fresh_internet()
        result = run_campaign_parallel(
            internet,
            TerminationPolicy(),
            slash24s=selection,
            snapshot=snapshot,
            seed=SEED,
            max_destinations_per_slash24=MAX_DESTINATIONS,
            workers=2,
        )
        assert result.measurements == serial_result.measurements

    def test_workers_must_be_positive(self, selection):
        internet, snapshot = _fresh_internet()
        with pytest.raises(ValueError):
            _run(internet, snapshot, selection, workers=0)

    def test_unpicklable_policy_falls_back_to_serial(
        self, selection, serial_result
    ):
        internet, snapshot = _fresh_internet()
        policy = TerminationPolicy()
        policy.unpicklable_probe = lambda: None  # defeats pickle
        result = run_campaign(
            internet,
            policy,
            slash24s=selection,
            snapshot=snapshot,
            seed=SEED,
            max_destinations_per_slash24=MAX_DESTINATIONS,
            workers=4,
        )
        assert result.measurements == serial_result.measurements


class TestCampaignResultAccounting:
    def _measurement(self, network="10.0.0.0", probes=7):
        return Slash24Measurement(
            slash24=Prefix.parse(f"{network}/24"),
            category=Category.TOO_FEW_ACTIVE,
            probes_used=probes,
        )

    def test_duplicate_add_raises(self):
        result = CampaignResult()
        result.add(self._measurement())
        with pytest.raises(ValueError, match="duplicate"):
            result.add(self._measurement(probes=3))
        assert result.probes_used == 7  # the duplicate never counted

    def test_merge_disjoint(self):
        left = CampaignResult()
        left.add(self._measurement("10.0.0.0", probes=2))
        right = CampaignResult()
        right.add(self._measurement("10.0.1.0", probes=3))
        left.merge(right)
        assert left.total == 2
        assert left.probes_used == 5

    def test_merge_overlap_raises(self):
        left = CampaignResult()
        left.add(self._measurement())
        right = CampaignResult()
        right.add(self._measurement())
        with pytest.raises(ValueError, match="overlap"):
            left.merge(right)

    def test_probe_stats_merge(self):
        total = ProbeStats.merged(
            [
                ProbeStats(sent=5, answered=4, echo_replies=3, ttl_exceeded=1),
                ProbeStats(sent=2, answered=1, echo_replies=0, ttl_exceeded=1),
            ]
        )
        assert total == ProbeStats(
            sent=7, answered=5, echo_replies=3, ttl_exceeded=2
        )
        assert total.timeouts == 2
