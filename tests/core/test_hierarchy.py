"""Tests for the hierarchy test — including a property-based check of
the stack algorithm against the quadratic reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import AddressRange
from repro.core import (
    find_non_hierarchical_pair,
    groups_hierarchical,
    groups_non_hierarchical,
    pairwise_relationships,
    ranges_hierarchical,
)


def r(first, last):
    return AddressRange(first, last)


class TestRangesHierarchical:
    def test_empty(self):
        assert ranges_hierarchical([])

    def test_single(self):
        assert ranges_hierarchical([r(0, 10)])

    def test_disjoint(self):
        assert ranges_hierarchical([r(0, 4), r(5, 9), r(20, 30)])

    def test_nested(self):
        assert ranges_hierarchical([r(0, 100), r(10, 20), r(30, 40)])

    def test_partial_overlap_detected(self):
        assert not ranges_hierarchical([r(0, 6), r(3, 9)])

    def test_deeply_nested(self):
        assert ranges_hierarchical([r(0, 100), r(10, 90), r(20, 80)])

    def test_figure_2c_example(self):
        # Non-hierarchical groups from the paper's Figure 2c: group
        # boundaries interleave.
        groups = [r(2, 237), r(126, 254), r(130, 130)]
        assert not ranges_hierarchical(groups)

    def test_figure_2a_disjoint_example(self):
        # Figure 2a: addresses .2-.126 vs .130-.237 → disjoint.
        assert ranges_hierarchical([r(2, 126), r(130, 237)])

    def test_identical_ranges_are_non_hierarchical(self):
        # Equal ranges require shared endpoint addresses — only load
        # balancing produces that, never distinct route entries.
        assert not ranges_hierarchical([r(5, 10), r(5, 10)])

    def test_shared_endpoint_containment(self):
        assert ranges_hierarchical([r(0, 10), r(0, 5)])
        assert ranges_hierarchical([r(0, 10), r(5, 10)])

    def test_pair_reported(self):
        pair = find_non_hierarchical_pair([r(0, 6), r(3, 9)])
        assert pair is not None
        assert {pair[0], pair[1]} == {r(0, 6), r(3, 9)}

    def test_no_pair_when_hierarchical(self):
        assert find_non_hierarchical_pair([r(0, 4), r(5, 9)]) is None


ranges_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    ).map(lambda t: AddressRange(min(t), max(t))),
    max_size=14,
)


class TestAgainstReference:
    @settings(max_examples=300)
    @given(ranges_strategy)
    def test_matches_quadratic_reference(self, ranges):
        expected = all(
            a.hierarchical_with(b)
            for i, a in enumerate(ranges)
            for b in ranges[i + 1:]
        )
        assert ranges_hierarchical(ranges) == expected

    @settings(max_examples=100)
    @given(ranges_strategy)
    def test_order_invariance(self, ranges):
        assert ranges_hierarchical(ranges) == ranges_hierarchical(
            list(reversed(ranges))
        )


class TestGroupsInterface:
    def test_groups_hierarchical(self):
        groups = {"a": [0, 4], "b": [5, 9]}
        assert groups_hierarchical(groups)
        assert not groups_non_hierarchical(groups)

    def test_groups_interleaved(self):
        groups = {"a": [0, 6], "b": [3, 9]}
        assert groups_non_hierarchical(groups)

    def test_pairwise_labels(self):
        labels = pairwise_relationships([r(0, 4), r(5, 9), r(2, 7)])
        kinds = {label for _a, _b, label in labels}
        assert "disjoint" in kinds
        assert "non-hierarchical" in kinds

    def test_pairwise_inclusive(self):
        labels = pairwise_relationships([r(0, 10), r(2, 5)])
        assert labels[0][2] == "inclusive"
