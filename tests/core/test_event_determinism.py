"""Determinism of events-enabled campaigns.

The dynamic-event engine (``netsim.events``) must not cost any of the
campaign executor's replay guarantees: with renumbering waves, routing
shifts, outages and storms all active, a campaign must stay
bit-identical across serial vs parallel execution, across a SIGKILLed
worker recovered through the store, and across the object vs columnar
measurement engines. Every stressor draws from the virtual clock and
seed-derived hashes only, so there is nothing wall-clock-shaped to
leak in.
"""

import dataclasses
import os

import pytest

from repro.core import TerminationPolicy, run_campaign
from repro.core.fastengine import CAMPAIGN_ENGINE_ENV
from repro.netsim import EventConfig, SimulatedInternet, tiny_scenario
from repro.probing import scan
from repro.store import MeasurementStore
from repro.store.codec import canonical_json_bytes, measurement_to_dict

SEED = 77
MAX_DESTINATIONS = 32
INTENSITY = 0.6
TEST_TTL = "2.0"


def _config():
    return dataclasses.replace(
        tiny_scenario(seed=13), events=EventConfig.at_intensity(INTENSITY)
    )


def _fresh_internet():
    internet = SimulatedInternet.from_config(_config())
    snapshot = scan(internet)
    return internet, snapshot


def _run(internet, snapshot, slash24s, workers=1, store=None):
    return run_campaign(
        internet,
        TerminationPolicy(),
        slash24s=slash24s,
        snapshot=snapshot,
        seed=SEED,
        max_destinations_per_slash24=MAX_DESTINATIONS,
        workers=workers,
        store=store,
    )


def _canonical(result):
    return {
        str(slash24): canonical_json_bytes(
            measurement_to_dict(result.measurements[slash24])
        )
        for slash24 in result.measurements
    }


@pytest.fixture(scope="module")
def selection():
    internet, snapshot = _fresh_internet()
    return snapshot.eligible_slash24s()[:24]


@pytest.fixture(scope="module")
def serial_state(selection):
    """(result, clock, probes, event counters) of the serial run."""
    internet, snapshot = _fresh_internet()
    result = _run(internet, snapshot, selection)
    return (
        result,
        internet.clock_seconds,
        internet.probe_count,
        dict(internet.events.counters),
    )


class TestEventsFire:
    def test_serial_run_exercises_every_stressor(self, serial_state):
        _, _, _, counters = serial_state
        for name in ("renumber", "outage", "storm"):
            assert counters[name] > 0, name
        # Reroutes are applied once per campaign, before probing.
        assert counters["reroute"] >= 0


class TestSerialVsParallel:
    def test_workers2_bit_identical(self, selection, serial_state):
        serial_result, serial_clock, serial_probes, serial_counters = (
            serial_state
        )
        internet, snapshot = _fresh_internet()
        result = _run(internet, snapshot, selection, workers=2)
        assert list(result.measurements) == list(serial_result.measurements)
        assert _canonical(result) == _canonical(serial_result)
        assert result.probes_used == serial_result.probes_used
        assert internet.clock_seconds == serial_clock
        assert internet.probe_count == serial_probes
        # Worker event deltas were shipped home through the ledger, so
        # the parent's counters agree with the serial run's.
        assert dict(internet.events.counters) == serial_counters


class TestKillResume:
    def test_killed_worker_recovery_bit_identical(
        self, selection, serial_state, tmp_path, monkeypatch
    ):
        """Worker 0 is SIGKILLed mid-batch while events are active: the
        lease lapses, a survivor steals it, and the result is still
        bit-identical to the serial events-enabled run."""
        serial_result, serial_clock, serial_probes, _ = serial_state
        monkeypatch.setenv("REPRO_LEASE_TTL", TEST_TTL)
        monkeypatch.setenv("REPRO_LEASE_KILL", "0:1")
        internet, snapshot = _fresh_internet()
        with MeasurementStore(str(tmp_path / "store")) as store:
            result = _run(
                internet, snapshot, selection, workers=3, store=store
            )
        assert _canonical(result) == _canonical(serial_result)
        assert result.probes_used == serial_result.probes_used
        assert internet.clock_seconds == serial_clock
        assert internet.probe_count == serial_probes

    def test_resume_from_store_replays_without_probes(
        self, selection, serial_state, tmp_path, monkeypatch
    ):
        """A warm resume over the killed run's store replays every /24
        without sending a probe — reroutes are reapplied idempotently
        and change nothing the store does not already reflect."""
        serial_result, _, _, _ = serial_state
        monkeypatch.setenv("REPRO_LEASE_TTL", TEST_TTL)
        monkeypatch.setenv("REPRO_LEASE_KILL", "0:1")
        with MeasurementStore(str(tmp_path / "store")) as store:
            internet, snapshot = _fresh_internet()
            _run(internet, snapshot, selection, workers=3, store=store)
        monkeypatch.delenv("REPRO_LEASE_KILL")
        with MeasurementStore(str(tmp_path / "store")) as store:
            internet, snapshot = _fresh_internet()
            base_probes = internet.probe_count
            warm = _run(
                internet, snapshot, selection, workers=3, store=store
            )
            assert internet.probe_count == base_probes  # pure replay
        assert _canonical(warm) == _canonical(serial_result)


class TestEngineParity:
    def _run_with_engine(self, engine, selection):
        previous = os.environ.get(CAMPAIGN_ENGINE_ENV)
        os.environ[CAMPAIGN_ENGINE_ENV] = engine
        try:
            internet, snapshot = _fresh_internet()
            result = _run(internet, snapshot, selection)
            return result, internet.clock_seconds, internet.probe_count
        finally:
            if previous is None:
                os.environ.pop(CAMPAIGN_ENGINE_ENV, None)
            else:
                os.environ[CAMPAIGN_ENGINE_ENV] = previous

    def test_object_vs_columnar_bit_identical(self, selection):
        object_result, object_clock, object_probes = self._run_with_engine(
            "object", selection
        )
        fast_result, fast_clock, fast_probes = self._run_with_engine(
            "columnar", selection
        )
        assert list(fast_result.measurements) == list(
            object_result.measurements
        )
        assert _canonical(fast_result) == _canonical(object_result)
        assert fast_result.probes_used == object_result.probes_used
        assert fast_clock == object_clock
        assert fast_probes == object_probes


class TestZeroIntensityIsInert:
    def test_zero_events_config_matches_plain_scenario(self, selection):
        """``EventConfig.at_intensity(0)`` must be byte-identical to no
        events config at all — pay for what you use."""
        plain = SimulatedInternet.from_config(tiny_scenario(seed=13))
        plain_snapshot = scan(plain)
        zeroed = SimulatedInternet.from_config(
            dataclasses.replace(
                tiny_scenario(seed=13), events=EventConfig.at_intensity(0.0)
            )
        )
        zero_snapshot = scan(zeroed)
        assert zeroed.events is None
        assert plain_snapshot.total_active == zero_snapshot.total_active
        plain_run = _run(plain, plain_snapshot, selection)
        zero_run = _run(zeroed, zero_snapshot, selection)
        assert _canonical(plain_run) == _canonical(zero_run)
        assert plain.clock_seconds == zeroed.clock_seconds
