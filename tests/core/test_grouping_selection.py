"""Tests for grouping and destination selection."""

import random

import pytest

from repro.core import (
    cardinality,
    group_by_lasthop,
    group_by_value,
    group_ranges,
    meets_selection_criteria,
    one_per_slash26,
    round_robin_order,
    slash26_groups,
    slash31_pair,
    union_lasthops,
)
from repro.core.grouping import identical_lasthop_sets
from repro.net import parse


def fs(*values):
    return frozenset(values)


class TestGrouping:
    def test_group_by_lasthop(self):
        observations = {10: fs(1), 20: fs(1), 30: fs(2)}
        groups = group_by_lasthop(observations)
        assert groups == {1: [10, 20], 2: [30]}

    def test_multi_lasthop_joins_both_groups(self):
        observations = {10: fs(1, 2)}
        groups = group_by_lasthop(observations)
        assert groups == {1: [10], 2: [10]}

    def test_empty_set_joins_nothing(self):
        observations = {10: fs()}
        assert group_by_lasthop(observations) == {}

    def test_group_by_value(self):
        groups = group_by_value({5: "x", 9: "x", 1: "y"})
        assert groups == {"x": [5, 9], "y": [1]}

    def test_group_ranges_sorted(self):
        groups = {"a": [30, 10], "b": [5]}
        ranges = group_ranges(groups)
        assert [(r.first, r.last) for r in ranges] == [(5, 5), (10, 30)]

    def test_union_and_cardinality(self):
        observations = {10: fs(1, 2), 20: fs(2, 3)}
        assert union_lasthops(observations) == fs(1, 2, 3)
        assert cardinality(observations) == 3

    def test_identical_sets(self):
        assert identical_lasthop_sets({1: fs(1, 2), 2: fs(1, 2)})
        assert not identical_lasthop_sets({1: fs(1, 2), 2: fs(1)})
        assert identical_lasthop_sets({})


class TestSelectionCriteria:
    def _slash24_addresses(self, *offsets):
        base = parse("10.0.0.0")
        return [base + offset for offset in offsets]

    def test_needs_four_active(self):
        assert not meets_selection_criteria(
            self._slash24_addresses(1, 70, 140)
        )

    def test_needs_all_slash26s(self):
        # Five addresses but all in one /26.
        assert not meets_selection_criteria(
            self._slash24_addresses(1, 2, 3, 4, 5)
        )

    def test_accepts_full_coverage(self):
        assert meets_selection_criteria(
            self._slash24_addresses(1, 70, 140, 200)
        )

    def test_slash26_groups(self):
        groups = slash26_groups(self._slash24_addresses(1, 2, 70, 140, 200))
        assert len(groups) == 4
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [1, 1, 1, 2]


class TestRoundRobin:
    def test_yields_all_addresses_once(self):
        addrs = [parse("10.0.0.0") + o for o in (1, 2, 70, 71, 140, 200)]
        rng = random.Random(3)
        order = list(round_robin_order(addrs, rng))
        assert sorted(order) == sorted(addrs)

    def test_first_round_covers_each_slash26(self):
        addrs = [parse("10.0.0.0") + o for o in (1, 2, 70, 71, 140, 200)]
        rng = random.Random(3)
        order = list(round_robin_order(addrs, rng))
        first_round = order[:4]
        slash26s = {a & 0xFFFFFFC0 for a in first_round}
        assert len(slash26s) == 4

    def test_deterministic_given_rng(self):
        addrs = [parse("10.0.0.0") + o for o in (1, 2, 70, 140, 200)]
        a = list(round_robin_order(addrs, random.Random(5)))
        b = list(round_robin_order(addrs, random.Random(5)))
        assert a == b


class TestPreliminarySelectors:
    def test_one_per_slash26(self):
        addrs = [parse("10.0.0.0") + o for o in (1, 2, 70, 140, 200)]
        chosen = one_per_slash26(addrs, random.Random(1))
        assert len(chosen) == 4
        assert len({a & 0xFFFFFFC0 for a in chosen}) == 4

    def test_slash31_pair_found(self):
        addrs = [parse("10.0.0.0") + o for o in (4, 5, 70)]
        pair = slash31_pair(addrs)
        assert pair is not None
        assert pair[0] & ~1 == pair[1] & ~1

    def test_slash31_pair_missing(self):
        addrs = [parse("10.0.0.0") + o for o in (1, 4, 70)]
        assert slash31_pair(addrs) is None
