"""Observability suite for the campaign executor.

Three contracts from the structured-observability work:

* serial and parallel campaigns fold **bit-identical** counters (only
  the execution-path markers differ);
* a degraded parallel run is *loud* — a Python warning, fallback
  counters, and a journal entry — instead of a silent serial fallback;
* tracing costs nothing when off and round-trips through
  ``summarize_trace`` when on.
"""

import contextlib
import warnings

import pytest

from repro.core import (
    ParallelFallbackWarning,
    TerminationPolicy,
    run_campaign,
)
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.obs.metrics import MetricsRegistry, current_metrics, metrics_scope
from repro.obs.trace import configure_tracing, span, summarize_trace
from repro.probing import scan

SEED = 5
MAX_DESTINATIONS = 48


@pytest.fixture(autouse=True)
def _reset_tracing():
    yield
    configure_tracing(None)


def _fresh_internet():
    internet = SimulatedInternet.from_config(tiny_scenario(seed=11))
    snapshot = scan(internet)
    return internet, snapshot


def _run(internet, snapshot, slash24s, workers=1, registry=None, policy=None):
    return run_campaign(
        internet,
        policy if policy is not None else TerminationPolicy(),
        slash24s=slash24s,
        snapshot=snapshot,
        seed=SEED,
        max_destinations_per_slash24=MAX_DESTINATIONS,
        workers=workers,
        metrics=registry,
    )


@pytest.fixture(scope="module")
def selection():
    _, snapshot = _fresh_internet()
    return snapshot.eligible_slash24s()[:16]


@contextlib.contextmanager
def _no_fallback_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error", ParallelFallbackWarning)
        yield


def _path_independent(counters):
    """Counters minus the execution-path markers (which legitimately
    differ between the serial and parallel runs)."""
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith("campaign.parallel")
    }


class TestSerialParallelParity:
    def test_counters_bit_identical(self, selection):
        serial_internet, serial_snapshot = _fresh_internet()
        serial_registry = MetricsRegistry()
        _run(
            serial_internet, serial_snapshot, selection,
            registry=serial_registry,
        )
        parallel_internet, parallel_snapshot = _fresh_internet()
        parallel_registry = MetricsRegistry()
        _run(
            parallel_internet, parallel_snapshot, selection,
            workers=2, registry=parallel_registry,
        )
        assert parallel_registry.counter_value("campaign.parallel") == 1
        assert _path_independent(parallel_registry.counters) == (
            _path_independent(serial_registry.counters)
        )

    def test_campaign_counters_match_result(self, selection):
        internet, snapshot = _fresh_internet()
        registry = MetricsRegistry()
        result = _run(internet, snapshot, selection, registry=registry)
        assert registry.counter_value("campaign.slash24s") == len(selection)
        # Without a store attached, every campaign probe was physically
        # sent, so the two accounting layers must agree exactly.
        assert registry.counter_value("campaign.probes.sent") == (
            registry.counter_value("netsim.probes")
        )
        assert result.total == len(selection)
        category_total = sum(
            value
            for name, value in registry.counters.items()
            if name.startswith("campaign.categories.")
        )
        assert category_total == len(selection)

    def test_netsim_counters_track_engine(self, selection):
        """``netsim.*`` is what the simulator physically did this run —
        after a parallel campaign it includes the workers' engines."""
        internet, snapshot = _fresh_internet()
        registry = MetricsRegistry()
        _run(internet, snapshot, selection, workers=2, registry=registry)
        assert registry.counter_value("netsim.probes") == (
            internet.probe_count
        )
        assert registry.counter_value("netsim.probe_batches") == (
            internet.probe_batches
        )
        assert registry.counter_value("netsim.batched_probes") == (
            internet.batched_probes
        )
        assert registry.timer_seconds("netsim.probe_seconds") == (
            pytest.approx(internet.probe_seconds)
        )

    def test_workers_gauge_records_request(self, selection):
        internet, snapshot = _fresh_internet()
        registry = MetricsRegistry()
        _run(internet, snapshot, selection[:4], workers=2, registry=registry)
        assert registry.gauge_value("campaign.workers") == 2

    def test_ambient_registry_is_the_default(self, selection):
        internet, snapshot = _fresh_internet()
        with metrics_scope() as scoped:
            _run(internet, snapshot, selection[:2])
            assert scoped is current_metrics()
        assert scoped.counter_value("campaign.slash24s") == 2


class TestParallelFallbackVisibility:
    def test_unpicklable_policy_warns_and_counts(self, selection):
        """The silent-degradation regression: an unpicklable policy used
        to fall back to serial with no signal anywhere."""
        internet, snapshot = _fresh_internet()
        policy = TerminationPolicy()
        policy.unpicklable_probe = lambda: None  # defeats pickle
        registry = MetricsRegistry()
        with pytest.warns(ParallelFallbackWarning, match="unpicklable"):
            result = _run(
                internet, snapshot, selection,
                workers=4, registry=registry, policy=policy,
            )
        assert registry.counter_value("campaign.parallel_fallback") == 1
        assert registry.counter_value(
            "campaign.parallel_fallback.unpicklable"
        ) == 1
        assert registry.counter_value("campaign.parallel") == 0
        assert result.total == len(selection)

    def test_fallback_lands_in_trace_journal(self, selection, tmp_path):
        journal = tmp_path / "trace.jsonl"
        configure_tracing(str(journal))
        internet, snapshot = _fresh_internet()
        policy = TerminationPolicy()
        policy.unpicklable_probe = lambda: None
        with pytest.warns(ParallelFallbackWarning):
            _run(
                internet, snapshot, selection[:4],
                workers=2, policy=policy,
            )
        configure_tracing(None)
        summary = summarize_trace(str(journal))
        assert not summary.clean
        assert any(
            warning["name"] == "campaign.parallel_fallback"
            and warning["reason"] == "unpicklable"
            for warning in summary.warnings
        )

    def test_healthy_parallel_run_does_not_warn(self, selection):
        internet, snapshot = _fresh_internet()
        registry = MetricsRegistry()
        with _no_fallback_warnings():
            _run(
                internet, snapshot, selection[:8],
                workers=2, registry=registry,
            )
        assert registry.counter_value("campaign.parallel_fallback") == 0

    def test_budgeted_parallel_request_counted_as_skip(self, selection):
        internet, snapshot = _fresh_internet()
        registry = MetricsRegistry()
        run_campaign(
            internet,
            TerminationPolicy(),
            slash24s=selection[:4],
            snapshot=snapshot,
            seed=SEED,
            max_probes=100_000,
            max_destinations_per_slash24=MAX_DESTINATIONS,
            workers=2,
            metrics=registry,
        )
        assert registry.counter_value(
            "campaign.parallel_skipped.budget"
        ) == 1
        assert registry.counter_value("campaign.parallel") == 0


class TestCampaignTracing:
    def test_serial_campaign_round_trips_through_summarize(
        self, selection, tmp_path
    ):
        journal = tmp_path / "trace.jsonl"
        configure_tracing(str(journal))
        internet, snapshot = _fresh_internet()
        _run(internet, snapshot, selection[:4])
        configure_tracing(None)
        summary = summarize_trace(str(journal))
        assert summary.clean
        assert summary.spans["campaign.run"].count == 1
        assert summary.spans["campaign.slash24"].count == 4
        assert summary.unclosed_spans == 0

    def test_parallel_campaign_traces_only_in_parent(
        self, selection, tmp_path
    ):
        """Workers never append to the parent's journal (interleaved
        writes); the parent still records the campaign.run span."""
        journal = tmp_path / "trace.jsonl"
        configure_tracing(str(journal))
        internet, snapshot = _fresh_internet()
        _run(internet, snapshot, selection[:8], workers=2)
        configure_tracing(None)
        summary = summarize_trace(str(journal))
        assert summary.clean
        assert summary.spans["campaign.run"].count == 1
        assert "campaign.slash24" not in summary.spans

    def test_campaign_without_tracing_touches_no_files(
        self, selection, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        internet, snapshot = _fresh_internet()
        _run(internet, snapshot, selection[:2])
        assert list(tmp_path.iterdir()) == []

    def test_disabled_span_is_shared_null_context(self):
        assert span("campaign.run") is span("campaign.slash24")
