"""End-to-end: full Hobbit pipeline — scan → measure → aggregate —
scored against ground truth on a fresh scenario."""

import pytest

from repro.aggregation import run_aggregation
from repro.core import Category, TerminationPolicy, run_campaign
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.probing import scan


@pytest.fixture(scope="module")
def pipeline():
    internet = SimulatedInternet.from_config(tiny_scenario(seed=21))
    snapshot = scan(internet)
    campaign = run_campaign(
        internet,
        TerminationPolicy(),
        snapshot=snapshot,
        seed=9,
        max_destinations_per_slash24=48,
    )
    aggregation = run_aggregation(
        campaign.lasthop_sets(),
        internet=internet,
        snapshot=snapshot,
        max_pairs_per_cluster=16,
        seed=9,
    )
    return internet, snapshot, campaign, aggregation


class TestPipelineAccuracy:
    def test_homogeneity_verdicts(self, pipeline):
        internet, _snapshot, campaign, _aggregation = pipeline
        truth = internet.ground_truth
        judged = correct = 0
        for slash24, m in campaign.measurements.items():
            if not m.category.analyzable:
                continue
            judged += 1
            correct += m.is_homogeneous == truth.is_homogeneous(slash24)
        assert judged > 150
        # Without a confidence table, exhausted /24s classify at their
        # end state, where low-cardinality hashing can mimic hierarchy —
        # the paper's own ~10% false-hierarchy rate (Section 4.1).
        assert correct / judged > 0.85

    def test_measured_lasthops_subset_of_truth(self, pipeline):
        internet, _snapshot, campaign, _aggregation = pipeline
        truth = internet.ground_truth
        checked = 0
        for slash24, m in campaign.measurements.items():
            if not m.lasthop_set:
                continue
            true_routers = {
                internet.topology.by_id(rid).address
                for rid in truth.lasthop_set_of(slash24)
            }
            assert m.lasthop_set <= true_routers, str(slash24)
            checked += 1
        assert checked > 100

    def test_aggregated_blocks_are_truly_homogeneous(self, pipeline):
        """Every identical-set block groups /24s with the same
        ground-truth last-hop set (the Section 5 guarantee)."""
        internet, _snapshot, campaign, aggregation = pipeline
        truth = internet.ground_truth
        impure = 0
        multi = 0
        for block in aggregation.identical_blocks:
            if block.size < 2:
                continue
            multi += 1
            true_sets = {
                truth.lasthop_set_of(slash24) for slash24 in block.slash24s
            }
            if len(true_sets) > 1:
                impure += 1
        assert multi > 10
        # Identical measured sets can occasionally come from different
        # pods behind the same routers; impurity must stay rare.
        assert impure <= max(1, multi // 10)

    def test_unresponsive_category_matches_silent_pods(self, pipeline):
        internet, _snapshot, campaign, _aggregation = pipeline
        truth = internet.ground_truth
        for m in campaign.by_category(Category.UNRESPONSIVE_LASTHOP):
            pods = truth.pods_of(m.slash24)
            assert any(pod.unresponsive_lasthop for pod in pods)

    def test_probe_load_is_sane(self, pipeline):
        _internet, _snapshot, campaign, _aggregation = pipeline
        per_slash24 = campaign.probes_used / campaign.total
        # The paper probed ~19 destinations per /24 (~a few hundred
        # packets); stay within an order of magnitude.
        assert per_slash24 < 2000
