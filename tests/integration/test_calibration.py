"""Integration: the simulator's observable phenomena sit in the bands
the paper measured (loose bands — the point is shape, not digits).

These run on the tiny scenario with small samples, so bands are wide;
EXPERIMENTS.md records the tighter small/paper-profile numbers.
"""

import random

import pytest

from repro.analysis.pathmetrics import lasthop_of_route
from repro.core import one_per_slash26, slash31_pair
from repro.probing import Prober, enumerate_paths, route_sets_share_route


@pytest.fixture(scope="module")
def probed_sample():
    """Route sets for a /26 spread and a /31 pair over sample /24s."""
    from repro.netsim import SimulatedInternet, tiny_scenario
    from repro.probing import scan

    internet = SimulatedInternet.from_config(tiny_scenario(seed=7))
    snapshot = scan(internet)
    rng = random.Random(3)
    prober = Prober(internet)
    eligible = snapshot.eligible_slash24s()[:160]

    quads = []
    pairs = []
    for slash24 in eligible:
        active = snapshot.active_in(slash24)
        quad_sets = []
        for dst in one_per_slash26(active, rng):
            mp = enumerate_paths(prober, dst, flow_seed=dst & 0xFFF)
            if mp.reached and mp.routes:
                quad_sets.append(frozenset(mp.routes))
        if len(quad_sets) >= 4:
            quads.append(quad_sets)
        pair = slash31_pair(active)
        if pair:
            pair_sets = []
            for dst in pair:
                mp = enumerate_paths(prober, dst, flow_seed=dst & 0xFFF)
                if mp.reached and mp.routes:
                    pair_sets.append(frozenset(mp.routes))
            if len(pair_sets) == 2:
                pairs.append(pair_sets)
    return quads, pairs


class TestStrawManHeterogeneity:
    def test_most_slash24s_look_heterogeneous(self, probed_sample):
        """Section 2.1: ~88% heterogeneous under route comparison."""
        quads, _pairs = probed_sample
        assert len(quads) >= 20
        heterogeneous = 0
        for quad in quads:
            share_all = all(
                route_sets_share_route(a, b)
                for i, a in enumerate(quad)
                for b in quad[i + 1:]
            )
            if not share_all:
                heterogeneous += 1
        assert heterogeneous / len(quads) > 0.4


class TestPerDestinationPrevalence:
    def test_slash31_distinct_routes(self, probed_sample):
        """Section 2.2: ~77% of /31 pairs have distinct route sets."""
        _quads, pairs = probed_sample
        assert len(pairs) >= 20
        distinct = sum(
            1
            for a, b in pairs
            if not route_sets_share_route(a, b)
        )
        assert 0.3 < distinct / len(pairs) <= 1.0

    def test_slash31_distinct_lasthops(self, probed_sample):
        """Section 2.3: ~30% of /31 pairs differ in last-hop routers."""
        _quads, pairs = probed_sample
        distinct = 0
        comparable = 0
        for a, b in pairs:
            lasthops_a = {lasthop_of_route(r) for r in a} - {None}
            lasthops_b = {lasthop_of_route(r) for r in b} - {None}
            if not lasthops_a or not lasthops_b:
                continue
            comparable += 1
            if lasthops_a != lasthops_b:
                distinct += 1
        assert comparable >= 15
        assert 0.1 < distinct / comparable < 0.75
