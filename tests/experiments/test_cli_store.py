"""CLI coverage for --store plumbing and the store subcommand."""

import pytest

from repro.cli import build_parser, main
from repro.core import TerminationPolicy, run_campaign
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.probing import scan
from repro.store import MeasurementStore
from repro.store.codec import HEADER_SIZE


@pytest.fixture(scope="module")
def store_root(tmp_path_factory):
    """A store populated by one small campaign."""
    root = tmp_path_factory.mktemp("cli-store") / "s"
    internet = SimulatedInternet.from_config(tiny_scenario(seed=11))
    snapshot = scan(internet)
    with MeasurementStore(root) as store:
        run_campaign(
            internet,
            TerminationPolicy(),
            slash24s=snapshot.eligible_slash24s()[:6],
            snapshot=snapshot,
            seed=5,
            max_destinations_per_slash24=48,
            store=store,
        )
    return root


class TestParser:
    def test_run_accepts_store(self):
        args = build_parser().parse_args(
            ["run", "table1", "--store", "/tmp/s"]
        )
        assert args.store == "/tmp/s"

    def test_store_subcommand(self):
        args = build_parser().parse_args(["store", "verify", "/tmp/s"])
        assert args.action == "verify"
        assert args.path == "/tmp/s"

    def test_store_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_store_bad_action_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "drop", "/tmp/s"])


class TestStoreCommand:
    def test_info(self, store_root, capsys):
        assert main(["store", "info", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "slash24_records" in out
        assert "6" in out

    def test_ls(self, store_root, capsys):
        assert main(["store", "ls", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out
        assert "probes" in out

    def test_verify_clean(self, store_root, capsys):
        assert main(["store", "verify", str(store_root)]) == 0
        assert "records ok: 6" in capsys.readouterr().out

    def test_verify_flags_corruption(self, store_root, capsys):
        for path in sorted((store_root / "segments").iterdir()):
            if path.stat().st_size > 0:
                data = bytearray(path.read_bytes())
                data[HEADER_SIZE + 2] ^= 0xFF
                path.write_bytes(bytes(data))
                break
        assert main(["store", "verify", str(store_root)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out

    def test_gc_compacts(self, store_root, capsys):
        assert main(["store", "gc", str(store_root)]) == 0
        out = capsys.readouterr().out
        assert "dropped 1 damaged" in out
        # After compaction the store verifies clean again.
        assert main(["store", "verify", str(store_root)]) == 0

    def test_no_path_and_no_env(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["store", "info"]) == 2
        assert "REPRO_STORE" in capsys.readouterr().err

    def test_env_fallback(self, store_root, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(store_root))
        assert main(["store", "info"]) == 0
