"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(
            ["run", "table1", "fig5", "--profile", "tiny"]
        )
        assert args.experiments == ["table1", "fig5"]
        assert args.profile == "tiny"

    def test_run_requires_experiments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--profile", "huge"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig11" in out

    def test_scenario(self, capsys):
        assert main(["scenario", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "universe_slash24s" in out

    def test_run_single(self, capsys):
        assert main(["run", "fig5", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "bogus", "--profile", "tiny"]) == 2


class TestJsonExport:
    def test_json_document(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(
            ["run", "fig5", "--profile", "tiny", "--json", str(path)]
        ) == 0
        import json

        document = json.loads(path.read_text())
        assert document["profile"] == "tiny"
        entry = document["experiments"][0]
        assert entry["experiment"] == "fig5"
        assert entry["headers"]
        assert entry["rows"]
