"""Workspace determinism: two independent builds of the same profile
must agree exactly (this is what makes EXPERIMENTS.md reproducible)."""

import pytest

from repro.experiments.common import PROFILES, Workspace


@pytest.fixture(scope="module")
def two_workspaces():
    a = Workspace(PROFILES["tiny"])
    b = Workspace(PROFILES["tiny"])
    a.ensure_built()
    b.ensure_built()
    return a, b


class TestDeterminism:
    def test_snapshots_identical(self, two_workspaces):
        a, b = two_workspaces
        assert a.snapshot.active_by_slash24 == b.snapshot.active_by_slash24

    def test_campaign_counts_identical(self, two_workspaces):
        a, b = two_workspaces
        assert a.campaign.category_counts() == b.campaign.category_counts()
        assert a.campaign.probes_used == b.campaign.probes_used

    def test_campaign_verdicts_identical(self, two_workspaces):
        a, b = two_workspaces
        for slash24, measurement in a.campaign.measurements.items():
            other = b.campaign.measurements[slash24]
            assert measurement.category == other.category
            assert measurement.lasthop_set == other.lasthop_set

    def test_aggregation_identical(self, two_workspaces):
        a, b = two_workspaces
        sizes_a = sorted(block.size for block in a.aggregation.final_blocks)
        sizes_b = sorted(block.size for block in b.aggregation.final_blocks)
        assert sizes_a == sizes_b
        assert a.aggregation.inflation == b.aggregation.inflation

    def test_confidence_tables_identical(self, two_workspaces):
        a, b = two_workspaces
        assert a.confidence_table.grid() == b.confidence_table.grid()

    def test_path_datasets_identical(self, two_workspaces):
        a, b = two_workspaces
        assert set(a.path_dataset) == set(b.path_dataset)
        for slash24 in a.path_dataset:
            assert a.path_dataset[slash24] == b.path_dataset[slash24]
