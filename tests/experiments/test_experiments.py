"""Run every experiment on the tiny profile and validate its output
contract; spot-check headline shapes where the tiny scenario supports
them."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    get_workspace,
    run_experiment,
)


@pytest.fixture(scope="module")
def workspace():
    return get_workspace("tiny")


class TestWorkspace:
    def test_profiles_known(self):
        with pytest.raises(KeyError):
            get_workspace("nonexistent")

    def test_workspace_cached(self, workspace):
        assert get_workspace("tiny") is workspace

    def test_snapshot_eligibility(self, workspace):
        eligible = workspace.eligible_slash24s()
        assert eligible
        assert len(eligible) <= len(workspace.internet.universe_slash24s)

    def test_confidence_table_built(self, workspace):
        table = workspace.confidence_table
        grid = table.grid()
        assert grid
        # Whenever the cardinality-1 cells are populated they must show
        # certainty (single-last-hop /24s are always recognised).
        card1 = [row for row in grid if row[0] == 1]
        for _card, _probed, confidence in card1:
            assert confidence == 1.0

    def test_campaign_ran(self, workspace):
        campaign = workspace.campaign
        assert campaign.total > 100
        assert campaign.probes_used > 0

    def test_path_dataset_structure(self, workspace):
        dataset = workspace.path_dataset
        assert dataset
        for slash24, per_dst in dataset.items():
            assert len(per_dst) >= 4
            for dst, routes in per_dst.items():
                assert slash24.contains_address(dst)
                assert routes


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs(workspace, experiment_id):
    result = run_experiment(experiment_id, workspace)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.headers
    rendered = result.render()
    assert result.title in rendered
    for header in result.headers:
        assert header in rendered


class TestHeadlineShapes:
    def test_table1_mostly_homogeneous(self, workspace):
        campaign = workspace.campaign
        assert campaign.homogeneous_fraction_of_analyzable() > 0.8

    def test_fig5_aggregation_reduces_blocks(self, workspace):
        aggregation = workspace.aggregation
        homogeneous = len(workspace.campaign.lasthop_sets())
        assert len(aggregation.identical_blocks) < homogeneous

    def test_fig10_final_at_most_identical(self, workspace):
        aggregation = workspace.aggregation
        assert len(aggregation.final_blocks) <= len(
            aggregation.identical_blocks
        )

    def test_fig3_cardinality_ordering(self, workspace):
        from repro.analysis import (
            lasthop_cardinality,
            subpath_cardinality,
            traceroute_cardinality,
        )
        import numpy as np

        entire, subpath, lasthop = [], [], []
        for route_sets in workspace.path_dataset.values():
            entire.append(traceroute_cardinality(route_sets))
            subpath.append(subpath_cardinality(route_sets))
            lasthop.append(lasthop_cardinality(route_sets))
        assert np.median(entire) >= np.median(subpath) >= np.median(lasthop)

    def test_unknown_experiment_rejected(self, workspace):
        with pytest.raises(KeyError):
            run_experiment("not-an-experiment", workspace)
