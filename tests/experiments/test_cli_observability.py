"""CLI-level observability: failure reporting in ``--json`` documents,
the ``--trace``/``run.json`` plumbing, and ``trace summarize``."""

import json

import pytest

import repro.cli as cli
from repro.experiments.common import ExperimentResult
from repro.obs.trace import Tracer, configure_tracing


@pytest.fixture(autouse=True)
def _reset_tracing():
    yield
    configure_tracing(None)


def _fake_result(experiment_id):
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"Fake {experiment_id}",
        headers=["quantity", "value"],
        rows=[["blocks", 3]],
    )


class TestRunFailureReporting:
    def test_failed_experiment_stays_in_json_document(
        self, tmp_path, monkeypatch, capsys
    ):
        """The silent-drop regression: a failed experiment used to
        vanish from ``--json`` output, indistinguishable from one that
        was never requested."""

        def runner(experiment_id, workspace):
            raise RuntimeError("synthetic runner failure")

        monkeypatch.setattr(cli, "run_experiment", runner)
        json_path = tmp_path / "out.json"
        exit_code = cli.main(
            ["run", "table1", "--profile", "tiny", "--json", str(json_path)]
        )
        assert exit_code == 1
        assert "[table1] FAILED" in capsys.readouterr().err

        document = json.loads(json_path.read_text())
        assert document["failures"] == 1
        entry = document["experiments"][0]
        assert entry["experiment"] == "table1"
        assert entry["error"] == "synthetic runner failure"
        assert entry["seconds"] >= 0

    def test_mixed_run_keeps_successes_and_failures(
        self, tmp_path, monkeypatch, capsys
    ):
        def runner(experiment_id, workspace):
            if experiment_id == "table2":
                raise RuntimeError("table2 broke")
            return _fake_result(experiment_id)

        monkeypatch.setattr(cli, "run_experiment", runner)
        json_path = tmp_path / "out.json"
        exit_code = cli.main(
            [
                "run", "table1", "table2", "table3",
                "--profile", "tiny", "--json", str(json_path),
            ]
        )
        assert exit_code == 1
        document = json.loads(json_path.read_text())
        assert document["failures"] == 1
        by_id = {
            entry["experiment"]: entry
            for entry in document["experiments"]
        }
        assert set(by_id) == {"table1", "table2", "table3"}
        assert "error" in by_id["table2"]
        assert by_id["table1"]["rows"] == [["blocks", "3"]]
        capsys.readouterr()

    def test_clean_run_reports_zero_failures(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            cli, "run_experiment", lambda i, w: _fake_result(i)
        )
        json_path = tmp_path / "out.json"
        assert cli.main(
            ["run", "table1", "--profile", "tiny", "--json", str(json_path)]
        ) == 0
        assert json.loads(json_path.read_text())["failures"] == 0
        capsys.readouterr()


class TestRunManifest:
    def test_trace_flag_writes_run_manifest(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            cli, "run_experiment", lambda i, w: _fake_result(i)
        )
        trace_path = tmp_path / "t.jsonl"
        exit_code = cli.main(
            [
                "run", "table1", "--profile", "tiny",
                "--workers", "2", "--trace", str(trace_path),
            ]
        )
        assert exit_code == 0
        manifest = json.loads((tmp_path / "run.json").read_text())
        assert manifest["command"] == "run"
        assert manifest["profile"] == "tiny"
        assert manifest["workers"] == 2
        assert manifest["engine"] in ("compiled", "reference")
        assert manifest["failures"] == 0
        assert manifest["experiments"] == ["table1"]
        assert "wrote trace" in capsys.readouterr().out


class TestTraceSummarizeCommand:
    def _journal(self, tmp_path, with_warning=False):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(str(path))
        with tracer.span("phase.campaign"):
            tracer.event("store.replay")
        if with_warning:
            tracer.warning("campaign.parallel_fallback", "degraded")
        tracer.close()
        return str(path)

    def test_clean_journal_exits_zero(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        assert cli.main(["trace", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "phase.campaign" in out
        assert "store.replay" in out

    def test_warnings_exit_nonzero(self, tmp_path, capsys):
        path = self._journal(tmp_path, with_warning=True)
        assert cli.main(["trace", "summarize", path]) == 1
        assert "campaign.parallel_fallback" in capsys.readouterr().err

    def test_missing_journal_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert cli.main(["trace", "summarize", missing]) == 2
        assert "no trace journal" in capsys.readouterr().err
