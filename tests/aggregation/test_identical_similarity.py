"""Tests for identical-set aggregation, similarity scores and the graph."""

import pytest

from repro.aggregation import (
    AggregatedBlock,
    WeightedGraph,
    aggregate_identical,
    build_similarity_graph,
    pairwise_similarities,
    similarity,
    size_histogram,
    size_log2_histogram,
    top_blocks,
)
from repro.net import Prefix


def s24(n: int) -> Prefix:
    return Prefix(0x0A000000 + n * 256, 24)


def fs(*values):
    return frozenset(values)


def block(block_id, lasthops, slash24_indices):
    return AggregatedBlock(
        block_id=block_id,
        lasthop_set=fs(*lasthops),
        slash24s=tuple(s24(i) for i in slash24_indices),
    )


class TestSimilarity:
    def test_paper_example(self):
        # A={1.1.1.1, 2.2.2.2, 3.3.3.3}, B={3.3.3.3, 4.4.4.4} → 1/3.
        a = fs(1, 2, 3)
        b = fs(3, 4)
        assert similarity(a, b) == pytest.approx(1 / 3)

    def test_identical_sets(self):
        assert similarity(fs(1, 2), fs(1, 2)) == 1.0

    def test_disjoint_sets(self):
        assert similarity(fs(1), fs(2)) == 0.0

    def test_empty_sets(self):
        assert similarity(fs(), fs(1)) == 0.0

    def test_symmetry(self):
        assert similarity(fs(1, 2, 3), fs(2)) == similarity(fs(2), fs(1, 2, 3))


class TestAggregateIdentical:
    def test_merges_identical_sets(self):
        sets = {s24(0): fs(1, 2), s24(5): fs(1, 2), s24(9): fs(3)}
        blocks = aggregate_identical(sets)
        assert len(blocks) == 2
        sizes = sorted(b.size for b in blocks)
        assert sizes == [1, 2]

    def test_skips_empty_sets(self):
        sets = {s24(0): fs(), s24(1): fs(1)}
        blocks = aggregate_identical(sets)
        assert len(blocks) == 1

    def test_slash24s_sorted_within_block(self):
        sets = {s24(9): fs(1), s24(0): fs(1)}
        blocks = aggregate_identical(sets)
        assert blocks[0].slash24s == (s24(0), s24(9))

    def test_block_ids_sequential(self):
        sets = {s24(i): fs(i) for i in range(5)}
        blocks = aggregate_identical(sets)
        assert [b.block_id for b in blocks] == list(range(5))

    def test_histograms(self):
        blocks = [
            block(0, [1], [0]),
            block(1, [2], [1]),
            block(2, [3], [2, 3]),
            block(3, [4], list(range(10, 27))),  # size 17
        ]
        assert size_histogram(blocks) == {1: 2, 2: 1, 17: 1}
        log2 = size_log2_histogram(blocks)
        assert log2 == {0: 2, 1: 1, 4: 1}

    def test_top_blocks(self):
        blocks = [
            block(0, [1], [0]),
            block(1, [2], [1, 2, 3]),
            block(2, [3], [5, 6]),
        ]
        ranked = top_blocks(blocks, 2)
        assert [b.block_id for b in ranked] == [1, 2]


class TestGraph:
    def test_add_and_query(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 0.5)
        assert graph.weight(0, 1) == 0.5
        assert graph.weight(1, 0) == 0.5
        assert graph.weight(0, 2) == 0.0
        assert graph.edge_count == 1

    def test_rejects_self_loop(self):
        graph = WeightedGraph(2)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1, 0.5)

    def test_rejects_non_positive_weight(self):
        graph = WeightedGraph(2)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 0.0)

    def test_connected_components(self):
        graph = WeightedGraph(5)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(3, 4, 1.0)
        components = graph.connected_components()
        assert sorted(map(tuple, components)) == [(0, 1), (2,), (3, 4)]

    def test_subgraph(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 2, 0.5)
        graph.add_edge(2, 3, 0.7)
        sub, ids = graph.subgraph([0, 2, 3])
        assert ids == [0, 2, 3]
        assert sub.weight(0, 1) == 0.5  # 0-2 remapped
        assert sub.weight(1, 2) == 0.7  # 2-3 remapped

    def test_to_sparse_symmetric(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 0.25)
        matrix = graph.to_sparse()
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] == matrix[1, 0] == 0.25

    def test_edges_listed_once(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 2, 0.5)
        assert len(list(graph.edges())) == 2


class TestSimilarityGraph:
    def test_built_from_overlaps(self):
        blocks = [
            block(0, [1, 2], [0]),
            block(1, [2, 3], [1]),
            block(2, [9], [2]),
        ]
        graph = build_similarity_graph(blocks)
        assert graph.weight(0, 1) == pytest.approx(0.5)
        assert graph.weight(0, 2) == 0.0
        assert graph.edge_count == 1

    def test_weights_match_similarity(self):
        blocks = [
            block(0, [1, 2, 3], [0]),
            block(1, [3, 4], [1]),
        ]
        graph = build_similarity_graph(blocks)
        assert graph.weight(0, 1) == pytest.approx(
            similarity(blocks[0].lasthop_set, blocks[1].lasthop_set)
        )

    def test_pairwise_similarities(self):
        blocks = [
            block(0, [1], [0]), block(1, [1], [1]), block(2, [2], [2]),
        ]
        scores = pairwise_similarities(blocks)
        assert sorted(scores) == [0.0, 0.0, 1.0]
