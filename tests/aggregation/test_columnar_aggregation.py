"""Golden equivalence suite: the columnar aggregation engine against
the object reference path.

The columnar engine's contract is bit-identical outputs — same blocks,
same similarity graph, same sweep choices, same clusters, same reprobe
inputs and validations — at any worker count. These tests enforce that
on synthetic inputs, on a real tiny-profile campaign, and on the edge
cases (empty input, all-empty sets, singletons, all-identical sets,
disjoint groups)."""

import random

import numpy as np
import pytest

from repro.aggregation import (
    AggregationParallelFallbackWarning,
    ColumnarAggregationUnsupported,
    WeightedGraph,
    aggregate_identical,
    aggregate_identical_columnar,
    aggregation_engine_name,
    build_similarity_graph,
    build_similarity_graph_columnar,
    choose_inflation,
    group_identical_columnar,
    mcl,
    mcl_from_stochastic,
    pairwise_similarities,
    prepare_stochastic,
    run_aggregation,
    run_mcl_on_components,
    similarity,
    sweep_and_cluster,
    weak_intra_cluster_fraction,
)
from repro.aggregation import identical as identical_mod
from repro.aggregation import sweep as sweep_mod
from repro.aggregation.pipeline import AGGREGATION_ENGINE_ENV
from repro.net import Prefix


def s24(n: int) -> Prefix:
    return Prefix(0x0A000000 + n * 256, 24)


def synthetic_sets(seed: int, count: int = 400, routers: int = 50, groups: int = 1):
    """Random last-hop sets with plenty of identical-set and
    partial-overlap structure (some empty sets included).

    With ``groups`` > 1 the router space is partitioned, so the
    similarity graph splits into at least that many connected
    components — the shape the parallel fan-out needs."""
    rng = random.Random(seed)
    sets = {}
    for n in range(count):
        k = rng.randint(0, 5)
        base = (n % groups) * routers
        sets[s24(n)] = (
            frozenset(rng.sample(range(base + 1, base + routers), k))
            if k
            else frozenset()
        )
    return sets


EDGE_CASES = {
    "empty_mapping": {},
    "all_empty_sets": {s24(n): frozenset() for n in range(5)},
    "singleton": {s24(0): frozenset({7})},
    "all_identical": {s24(n): frozenset({1, 2, 3}) for n in range(6)},
    "disjoint_groups": {
        s24(n): frozenset({n % 3 * 10, n % 3 * 10 + 1}) for n in range(9)
    },
}


def outputs(outcome):
    return (
        outcome.identical_blocks,
        outcome.inflation,
        outcome.sweep_outcomes,
        outcome.clusters,
        outcome.rule_matches,
        outcome.final_blocks,
    )


class TestIdenticalGrouping:
    def test_synthetic_equivalence(self):
        sets = synthetic_sets(3)
        assert aggregate_identical_columnar(sets) == aggregate_identical(sets)

    @pytest.mark.parametrize("name", sorted(EDGE_CASES))
    def test_edge_cases(self, name):
        sets = EDGE_CASES[name]
        assert aggregate_identical_columnar(sets) == aggregate_identical(sets)

    def test_columnar_blocks_layout(self):
        sets = synthetic_sets(4, count=60)
        cblocks = group_identical_columnar(sets)
        blocks = aggregate_identical(sets)
        assert cblocks.block_count == len(blocks)
        assert cblocks.sizes.tolist() == [b.size for b in blocks]
        assert cblocks.lasthop_sizes.tolist() == [
            len(b.lasthop_set) for b in blocks
        ]
        # Member and last-hop runs are ascending within each block.
        for i in range(cblocks.block_count):
            members = cblocks.member_nets[
                cblocks.member_lo[i]:cblocks.member_hi[i]
            ]
            lasthops = cblocks.lh_pool[cblocks.lh_lo[i]:cblocks.lh_hi[i]]
            assert (np.diff(members.astype(np.int64)) > 0).all()
            assert (np.diff(lasthops.astype(np.int64)) > 0).all()

    def test_hash_collisions_never_merge_sets(self, monkeypatch):
        # Degrade the hash to a constant: every same-size set collides,
        # so grouping correctness rests entirely on bucket verification.
        monkeypatch.setattr(
            identical_mod,
            "_splitmix64",
            lambda values: np.zeros(len(values), dtype=np.uint64),
        )
        sets = synthetic_sets(5, count=200)
        assert aggregate_identical_columnar(sets) == aggregate_identical(sets)

    def test_non_slash24_keys_unsupported(self):
        with pytest.raises(ColumnarAggregationUnsupported):
            group_identical_columnar({Prefix(0, 16): frozenset({1})})

    def test_out_of_range_routers_unsupported(self):
        with pytest.raises(ColumnarAggregationUnsupported):
            group_identical_columnar({s24(0): frozenset({1 << 33})})


class TestSimilarityGraph:
    def test_graph_equivalence(self):
        sets = synthetic_sets(6)
        blocks = aggregate_identical(sets)
        reference = build_similarity_graph(blocks)
        columnar = build_similarity_graph_columnar(
            group_identical_columnar(sets)
        )
        ru, rv, rw = reference.edge_arrays()
        cu, cv, cw = columnar.edge_arrays()
        assert (ru == cu).all() and (rv == cv).all()
        assert (rw == cw).all()  # bit-identical weights
        assert reference.vertex_count == columnar.vertex_count

    @pytest.mark.parametrize("name", sorted(EDGE_CASES))
    def test_edge_cases(self, name):
        sets = EDGE_CASES[name]
        reference = build_similarity_graph(aggregate_identical(sets))
        columnar = build_similarity_graph_columnar(
            group_identical_columnar(sets)
        )
        assert reference.vertex_count == columnar.vertex_count
        assert list(reference.edges()) == list(columnar.edges())

    def test_pairwise_similarities_matches_scalar(self):
        sets = synthetic_sets(7, count=40)
        blocks = aggregate_identical(sets)
        expected = [
            similarity(a.lasthop_set, b.lasthop_set)
            for i, a in enumerate(blocks)
            for b in blocks[i + 1:]
        ]
        assert pairwise_similarities(blocks) == expected

    def test_pairwise_similarities_empty_sets(self):
        blocks = aggregate_identical({s24(0): frozenset({1})})
        block = blocks[0]
        empty = type(block)(
            block_id=1, lasthop_set=frozenset(), slash24s=(s24(1),)
        )
        assert pairwise_similarities([block, empty]) == [0.0]
        assert pairwise_similarities([empty, empty]) == [0.0]
        assert pairwise_similarities([block]) == []


class TestGraphBackend:
    def test_overwrite_semantics(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 0.5)
        assert graph.weight(0, 1) == 0.5  # finalize staged edges
        graph.add_edge(1, 0, 0.25)  # re-add after a read, reversed
        assert graph.weight(0, 1) == 0.25
        assert graph.edge_count == 1

    def test_to_sparse_is_shared_and_symmetric(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 2, 0.75)
        matrix = graph.to_sparse()
        assert matrix is graph.to_sparse()  # no per-call copy
        dense = matrix.toarray()
        assert (dense == dense.T).all()
        assert dense[0, 1] == 0.5 and dense[1, 2] == 0.75

    def test_connected_components_ordering(self):
        # Historical DFS contract: components ordered by smallest
        # member, members ascending, singletons included.
        graph = WeightedGraph(7)
        graph.add_edge(5, 2, 1.0)
        graph.add_edge(6, 0, 1.0)
        graph.add_edge(4, 1, 1.0)
        assert graph.connected_components() == [
            [0, 6], [1, 4], [2, 5], [3],
        ]

    def test_from_edge_arrays_validation(self):
        u = np.array([0]); v = np.array([0]); w = np.array([1.0])
        with pytest.raises(ValueError):
            WeightedGraph.from_edge_arrays(2, u, v, w)
        with pytest.raises(ValueError):
            WeightedGraph.from_edge_arrays(
                2, np.array([0]), np.array([1]), np.array([0.0])
            )
        with pytest.raises(ValueError):
            WeightedGraph.from_edge_arrays(
                2, np.array([0]), np.array([5]), np.array([1.0])
            )

    def test_subgraph_matches_weights(self):
        sets = synthetic_sets(8, count=120)
        graph = build_similarity_graph(aggregate_identical(sets))
        component = graph.connected_components()[0]
        subgraph, original = graph.subgraph(component)
        assert original == component
        for i, u in enumerate(original):
            for j, v in enumerate(original):
                if i < j:
                    assert subgraph.weight(i, j) == graph.weight(u, v)


class TestWeakFraction:
    def test_matches_loop_reference(self):
        sets = synthetic_sets(9)
        graph = build_similarity_graph(aggregate_identical(sets))
        clusters = run_mcl_on_components(graph, 2.0)
        weights = graph.edge_weights()
        median = float(np.median(weights))
        # The pre-vectorisation dict-based computation, verbatim.
        cluster_of = {}
        for index, cluster in enumerate(clusters):
            for vertex in cluster:
                cluster_of[vertex] = index
        weak = total = 0
        for u, v, weight in graph.edges():
            if cluster_of.get(u) == cluster_of.get(v):
                total += 1
                if weight < median:
                    weak += 1
        expected = weak / total if total else 0.0
        assert weak_intra_cluster_fraction(graph, clusters, median) == expected

    def test_unclustered_vertices_count_as_intra(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 0.2)
        graph.add_edge(2, 3, 0.9)
        # Only vertices 2, 3 are clustered; 0-1 joins as unclustered.
        fraction = weak_intra_cluster_fraction(graph, [[2, 3]], 0.5)
        assert fraction == 0.5


class TestSweepAndCluster:
    def test_matches_serial_primitives(self):
        sets = synthetic_sets(10)
        graph = build_similarity_graph(aggregate_identical(sets))
        inflation, outcomes = choose_inflation(graph)
        swept_inflation, swept_outcomes, clusters = sweep_and_cluster(graph)
        assert swept_inflation == inflation
        assert swept_outcomes == outcomes
        assert clusters == run_mcl_on_components(graph, inflation)

    def test_workers_do_not_change_results(self):
        sets = synthetic_sets(11, groups=4)
        graph = build_similarity_graph(aggregate_identical(sets))
        assert len(graph.connected_components()) > 1
        serial = sweep_and_cluster(graph, workers=1)
        parallel = sweep_and_cluster(graph, workers=2)
        assert serial == parallel

    def test_pool_failure_falls_back_serially(self, monkeypatch):
        sets = synthetic_sets(12, groups=4)
        graph = build_similarity_graph(aggregate_identical(sets))
        expected = sweep_and_cluster(graph, workers=1)

        def broken_context(_method):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            sweep_mod.multiprocessing, "get_context", broken_context
        )
        with pytest.warns(AggregationParallelFallbackWarning):
            degraded = sweep_and_cluster(graph, workers=2)
        assert degraded == expected

    def test_shared_stochastic_matches_independent_mcl(self):
        sets = synthetic_sets(13, count=80)
        graph = build_similarity_graph(aggregate_identical(sets))
        component = max(graph.connected_components(), key=len)
        subgraph, _ = graph.subgraph(component)
        adjacency = subgraph.to_sparse()
        stochastic = prepare_stochastic(adjacency)
        before = stochastic.toarray().copy()
        for inflation in (1.4, 2.0, 4.0):
            shared = mcl_from_stochastic(stochastic, inflation=inflation)
            independent = mcl(adjacency, inflation=inflation)
            assert shared.clusters == independent.clusters
            assert shared.iterations == independent.iterations
        # The shared matrix is never mutated by a run.
        assert (stochastic.toarray() == before).all()


class TestEngineGate:
    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv(AGGREGATION_ENGINE_ENV, raising=False)
        assert aggregation_engine_name() == "columnar"
        monkeypatch.setenv(AGGREGATION_ENGINE_ENV, "object")
        assert aggregation_engine_name() == "object"
        monkeypatch.setenv(AGGREGATION_ENGINE_ENV, "reference")
        assert aggregation_engine_name() == "object"
        monkeypatch.setenv(AGGREGATION_ENGINE_ENV, "columnar")
        assert aggregation_engine_name() == "columnar"
        assert aggregation_engine_name("object") == "object"

    @pytest.mark.parametrize("workers", [1, 2])
    def test_engines_identical_synthetic(self, workers):
        sets = synthetic_sets(14, groups=3)
        reference = run_aggregation(sets, validate=False, engine="object")
        columnar = run_aggregation(
            sets, validate=False, engine="columnar", workers=workers
        )
        assert outputs(reference) == outputs(columnar)
        assert reference.engine == "object"
        assert columnar.engine == "columnar"

    @pytest.mark.parametrize("name", sorted(EDGE_CASES))
    def test_engines_identical_edge_cases(self, name):
        sets = EDGE_CASES[name]
        reference = run_aggregation(sets, validate=False, engine="object")
        columnar = run_aggregation(sets, validate=False, engine="columnar")
        assert outputs(reference) == outputs(columnar)

    def test_unsupported_input_falls_back_to_object(self):
        sets = {Prefix(0, 16): frozenset({1}), Prefix(1 << 16, 16): frozenset({1})}
        outcome = run_aggregation(sets, validate=False, engine="columnar")
        assert outcome.engine == "object"
        assert outputs(outcome) == outputs(
            run_aggregation(sets, validate=False, engine="object")
        )


class TestFullPipelineGolden:
    """Columnar vs object on a real tiny-profile campaign, with
    validation reprobing: identical everything, including the reprobe
    inputs and probe accounting."""

    @pytest.fixture(scope="class")
    def campaign_inputs(self):
        from repro.core import TerminationPolicy, run_campaign
        from repro.probing import scan

        def build():
            from repro.netsim import SimulatedInternet, tiny_scenario

            internet = SimulatedInternet.from_config(tiny_scenario(seed=7))
            snapshot = scan(internet)
            campaign = run_campaign(
                internet,
                TerminationPolicy(),
                slash24s=snapshot.eligible_slash24s()[:120],
                snapshot=snapshot,
                seed=2,
                max_destinations_per_slash24=48,
            )
            return internet, snapshot, campaign.lasthop_sets()

        return build

    @pytest.mark.parametrize("workers", [1, 2])
    def test_validated_runs_identical(self, campaign_inputs, workers):
        results = []
        for engine in ("object", "columnar"):
            # Fresh deterministic internet per engine: validation
            # reprobes mutate simulator state, so each engine gets an
            # identical untouched copy.
            internet, snapshot, lasthop_sets = campaign_inputs()
            outcome = run_aggregation(
                lasthop_sets,
                internet=internet,
                snapshot=snapshot,
                max_pairs_per_cluster=16,
                seed=4,
                engine=engine,
                workers=workers,
            )
            results.append(outcome)
        reference, columnar = results
        assert outputs(reference) == outputs(columnar)
        assert reference.validations == columnar.validations
        assert reference.reprobe_records == columnar.reprobe_records
        assert reference.reprobe_probes_used == columnar.reprobe_probes_used

    def test_preload_replay_identical(self, campaign_inputs):
        internet, snapshot, lasthop_sets = campaign_inputs()
        live = run_aggregation(
            lasthop_sets,
            internet=internet,
            snapshot=snapshot,
            max_pairs_per_cluster=16,
            seed=4,
            engine="columnar",
        )
        internet2, snapshot2, _ = campaign_inputs()
        replayed = run_aggregation(
            lasthop_sets,
            internet=internet2,
            snapshot=snapshot2,
            max_pairs_per_cluster=16,
            seed=4,
            engine="columnar",
            reprobe_preload=live.reprobe_records,
        )
        assert outputs(live) == outputs(replayed)
        assert live.reprobe_probes_used == replayed.reprobe_probes_used
