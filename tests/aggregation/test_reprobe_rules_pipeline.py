"""Tests for reprobe validation, the Section 6.6 rule and the full
aggregation pipeline."""

import random

import pytest

from repro.aggregation import (
    AggregatedBlock,
    Reprober,
    SimilarityRule,
    run_aggregation,
    validate_cluster,
)
from repro.aggregation.reprobe import _sample_pairs
from repro.core import TerminationPolicy, run_campaign
from repro.net import Prefix
from repro.probing import scan


def s24(n: int) -> Prefix:
    return Prefix(0x0A000000 + n * 256, 24)


def fs(*values):
    return frozenset(values)


def block(block_id, lasthops, slash24_indices):
    return AggregatedBlock(
        block_id=block_id,
        lasthop_set=fs(*lasthops),
        slash24s=tuple(s24(i) for i in slash24_indices),
    )


class TestPairSampling:
    def test_all_pairs_when_small(self):
        pairs = _sample_pairs([s24(0), s24(1), s24(2)], 10, random.Random(1))
        assert len(pairs) == 3

    def test_caps_large_sets(self):
        slash24s = [s24(i) for i in range(30)]
        pairs = _sample_pairs(slash24s, 12, random.Random(1))
        assert len(pairs) == 12
        assert len(set(pairs)) == 12

    def test_no_self_pairs(self):
        pairs = _sample_pairs([s24(i) for i in range(20)], 30, random.Random(1))
        assert all(a != b for a, b in pairs)


class TestSimilarityRule:
    def test_matches_uniform_strong_cluster(self):
        blocks = [block(i, [1, 2], [i]) for i in range(3)]
        assert SimilarityRule().matches(blocks)

    def test_rejects_weak_cluster(self):
        blocks = [
            block(0, [1, 2, 3, 4], [0]),
            block(1, [4, 5, 6, 7], [1]),
            block(2, [7, 8, 9, 10], [2]),
        ]
        assert not SimilarityRule().matches(blocks)

    def test_rejects_single_block(self):
        assert not SimilarityRule().matches([block(0, [1], [0])])

    def test_score_summary(self):
        blocks = [block(0, [1, 2], [0]), block(1, [2, 3], [1])]
        summary = SimilarityRule().score_summary(blocks)
        assert summary["pairs"] == 1
        assert summary["median"] == pytest.approx(0.5)


class TestFullAggregation:
    @pytest.fixture(scope="class")
    def aggregated(self):
        from repro.netsim import SimulatedInternet, tiny_scenario

        internet = SimulatedInternet.from_config(tiny_scenario(seed=7))
        snapshot = scan(internet)
        campaign = run_campaign(
            internet,
            TerminationPolicy(),
            slash24s=snapshot.eligible_slash24s()[:120],
            snapshot=snapshot,
            seed=2,
            max_destinations_per_slash24=48,
        )
        outcome = run_aggregation(
            campaign.lasthop_sets(),
            internet=internet,
            snapshot=snapshot,
            max_pairs_per_cluster=16,
            seed=4,
        )
        return internet, campaign, outcome

    def test_final_blocks_cover_all_inputs(self, aggregated):
        _internet, campaign, outcome = aggregated
        input_slash24s = set(campaign.lasthop_sets())
        covered = {
            slash24
            for b in outcome.final_blocks
            for slash24 in b.slash24s
        }
        assert covered == input_slash24s

    def test_final_blocks_disjoint(self, aggregated):
        _internet, _campaign, outcome = aggregated
        seen = set()
        for b in outcome.final_blocks:
            for slash24 in b.slash24s:
                assert slash24 not in seen
                seen.add(slash24)

    def test_identical_aggregation_reduces_count(self, aggregated):
        _internet, campaign, outcome = aggregated
        assert len(outcome.identical_blocks) <= len(campaign.lasthop_sets())

    def test_clusters_partition_blocks(self, aggregated):
        _internet, _campaign, outcome = aggregated
        members = sorted(i for c in outcome.clusters for i in c)
        assert members == list(range(len(outcome.identical_blocks)))

    def test_merging_never_increases_blocks(self, aggregated):
        _internet, _campaign, outcome = aggregated
        assert len(outcome.final_blocks) <= len(outcome.identical_blocks)
        assert outcome.blocks_merged_away >= 0

    def test_confirmed_clusters_have_ratio_one(self, aggregated):
        _internet, _campaign, outcome = aggregated
        for validation in outcome.validations:
            if validation.homogeneous:
                assert validation.identical_ratio == 1.0

    def test_validation_requires_internet(self):
        with pytest.raises(ValueError):
            run_aggregation(
                {s24(0): fs(1), s24(1): fs(1, 2)},
                validate=True,
            )

    def test_aggregation_without_validation(self):
        outcome = run_aggregation(
            {s24(0): fs(1), s24(1): fs(1), s24(2): fs(2)},
            validate=False,
            inflation=2.0,
        )
        assert len(outcome.identical_blocks) == 2
        assert outcome.validations == []
        assert len(outcome.final_blocks) == 2

    def test_merged_block_true_homogeneity(self, aggregated):
        """Blocks merged by confirmed clusters must be ground-truth
        homogeneous aggregates (same pod last-hop sets)."""
        internet, _campaign, outcome = aggregated
        truth = internet.ground_truth
        confirmed = {
            v.cluster_index for v in outcome.validations if v.homogeneous
        }
        for index in confirmed:
            cluster = outcome.clusters[index]
            lasthop_sets = set()
            for block_index in cluster:
                b = outcome.identical_blocks[block_index]
                for slash24 in b.slash24s:
                    lasthop_sets.add(truth.lasthop_set_of(slash24))
            # Reprobe-confirmed clusters should correspond to a single
            # ground-truth last-hop set in the vast majority of cases.
            assert len(lasthop_sets) <= 2
