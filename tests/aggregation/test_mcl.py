"""Tests for the MCL implementation."""

import numpy as np
import pytest
from scipy import sparse

from repro.aggregation import WeightedGraph, mcl
from repro.aggregation.sweep import (
    choose_inflation,
    run_mcl_on_components,
    weak_intra_cluster_fraction,
)
from repro.obs import metrics_scope


def two_cliques_graph(bridge_weight=0.05):
    """Two 4-cliques connected by one weak edge."""
    graph = WeightedGraph(8)
    for base in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                graph.add_edge(base + i, base + j, 1.0)
    graph.add_edge(3, 4, bridge_weight)
    return graph


class TestMcl:
    def test_two_cliques_separate(self):
        result = mcl(two_cliques_graph().to_sparse(), inflation=2.0)
        clusters = sorted(map(tuple, result.clusters))
        assert clusters == [(0, 1, 2, 3), (4, 5, 6, 7)]
        assert result.converged

    def test_singleton_graph(self):
        matrix = sparse.csr_matrix((1, 1))
        result = mcl(matrix)
        assert result.clusters == [[0]]

    def test_empty_graph(self):
        matrix = sparse.csr_matrix((0, 0))
        assert mcl(matrix).clusters == []

    def test_disconnected_vertices_are_singletons(self):
        graph = WeightedGraph(4)
        graph.add_edge(0, 1, 1.0)
        result = mcl(graph.to_sparse())
        clusters = sorted(map(tuple, result.clusters))
        assert (2,) in clusters
        assert (3,) in clusters

    def test_nnz_peak_gauge_recorded(self):
        """The densest expansion intermediate — MCL's memory high-water
        mark — lands in the metrics registry."""
        adjacency = two_cliques_graph().to_sparse()
        with metrics_scope() as registry:
            mcl(adjacency, inflation=2.0)
        peak = registry.gauge_value("mcl.nnz_peak")
        # At least as dense as the normalised input (adjacency plus
        # self loops); expansion only adds fill-in.
        assert peak >= adjacency.nnz + adjacency.shape[0]
        assert registry.counter_value("mcl.runs") == 1

    def test_clusters_partition_vertices(self):
        result = mcl(two_cliques_graph().to_sparse())
        vertices = sorted(v for c in result.clusters for v in c)
        assert vertices == list(range(8))

    def test_higher_inflation_finer_clusters(self):
        # A weakly-connected chain: high inflation should produce at
        # least as many clusters as low inflation.
        graph = WeightedGraph(9)
        for i in range(8):
            graph.add_edge(i, i + 1, 1.0 if i % 3 else 0.2)
        low = mcl(graph.to_sparse(), inflation=1.4)
        high = mcl(graph.to_sparse(), inflation=6.0)
        assert len(high.clusters) >= len(low.clusters)

    def test_rejects_bad_inflation(self):
        with pytest.raises(ValueError):
            mcl(two_cliques_graph().to_sparse(), inflation=1.0)

    def test_rejects_negative_weights(self):
        matrix = sparse.csr_matrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(ValueError):
            mcl(matrix)

    def test_deterministic(self):
        a = mcl(two_cliques_graph().to_sparse())
        b = mcl(two_cliques_graph().to_sparse())
        assert a.clusters == b.clusters


class TestComponentRunner:
    def test_component_split_matches_whole(self):
        graph = two_cliques_graph(bridge_weight=0.0001)
        by_component = run_mcl_on_components(graph, 2.0)
        whole = mcl(graph.to_sparse(), inflation=2.0).clusters
        assert sorted(map(tuple, by_component)) == sorted(map(tuple, whole))

    def test_isolated_components(self):
        graph = WeightedGraph(5)
        graph.add_edge(0, 1, 1.0)
        clusters = run_mcl_on_components(graph, 2.0)
        assert sorted(map(tuple, clusters)) == [
            (0, 1), (2,), (3,), (4,),
        ]


class TestSweep:
    def test_weak_fraction_zero_for_tight_clusters(self):
        graph = two_cliques_graph(bridge_weight=0.05)
        clusters = [[0, 1, 2, 3], [4, 5, 6, 7]]
        fraction = weak_intra_cluster_fraction(graph, clusters, 0.5)
        assert fraction == 0.0

    def test_weak_fraction_counts_bridge(self):
        graph = two_cliques_graph(bridge_weight=0.05)
        clusters = [list(range(8))]
        fraction = weak_intra_cluster_fraction(graph, clusters, 0.5)
        assert fraction == pytest.approx(1 / 13)

    def test_choose_inflation_prefers_clean_split(self):
        graph = two_cliques_graph(bridge_weight=0.05)
        inflation, outcomes = choose_inflation(graph, candidates=(1.4, 2.0))
        assert outcomes
        best = min(
            outcomes, key=lambda o: (o.weak_edge_fraction, o.inflation)
        )
        assert inflation == best.inflation

    def test_choose_inflation_empty_graph(self):
        graph = WeightedGraph(3)
        inflation, outcomes = choose_inflation(graph, candidates=(2.0,))
        assert inflation == 2.0
        assert outcomes == []
