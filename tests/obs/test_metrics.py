"""Tests for the mergeable metrics registry.

The registry's contract is what makes parallel-campaign telemetry
work: plain-data (picklable) state, and a merge that reconstructs
serial totals bit-identically from per-shard registries.
"""

import pickle
import types

import pytest

from repro.obs.metrics import MetricsRegistry, current_metrics, metrics_scope


class TestRecording:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.count("campaign.slash24s")
        registry.count("campaign.slash24s", 4)
        assert registry.counter_value("campaign.slash24s") == 5

    def test_counter_default(self):
        assert MetricsRegistry().counter_value("missing") == 0
        assert MetricsRegistry().counter_value("missing", default=-1) == -1

    def test_gauge_keeps_latest(self):
        registry = MetricsRegistry()
        registry.gauge("campaign.workers", 2)
        registry.gauge("campaign.workers", 8)
        assert registry.gauge_value("campaign.workers") == 8

    def test_timer_accumulates_seconds_and_calls(self):
        registry = MetricsRegistry()
        registry.add_seconds("phase.campaign", 1.5)
        registry.add_seconds("phase.campaign", 0.5, calls=3)
        assert registry.timer_seconds("phase.campaign") == 2.0
        assert registry.timer_calls("phase.campaign") == 4

    def test_timer_defaults(self):
        registry = MetricsRegistry()
        assert registry.timer_seconds("missing") == 0.0
        assert registry.timer_calls("missing") == 0

    def test_time_context_manager(self, monkeypatch):
        ticks = iter([10.0, 12.5])
        monkeypatch.setattr(
            "repro.obs.metrics.time",
            types.SimpleNamespace(perf_counter=lambda: next(ticks)),
        )
        registry = MetricsRegistry()
        with registry.time("phase.scenario"):
            pass
        assert registry.timer_seconds("phase.scenario") == 2.5
        assert registry.timer_calls("phase.scenario") == 1

    def test_time_records_on_exception(self, monkeypatch):
        ticks = iter([0.0, 1.0])
        monkeypatch.setattr(
            "repro.obs.metrics.time",
            types.SimpleNamespace(perf_counter=lambda: next(ticks)),
        )
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.time("phase.broken"):
                raise RuntimeError("boom")
        assert registry.timer_seconds("phase.broken") == 1.0


class TestMerge:
    def test_counters_add(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.count("a", 2)
        right.count("a", 3)
        right.count("b", 1)
        assert left.merge(right) is left
        assert left.counter_value("a") == 5
        assert left.counter_value("b") == 1

    def test_gauges_take_other_side(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.gauge("g", 1.0)
        right.gauge("g", 7.0)
        left.merge(right)
        assert left.gauge_value("g") == 7.0

    def test_timers_add_seconds_and_calls(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.add_seconds("t", 1.0, calls=2)
        right.add_seconds("t", 0.25, calls=1)
        left.merge(right)
        assert left.timer_seconds("t") == 1.25
        assert left.timer_calls("t") == 3

    def test_shard_merge_reconstructs_serial_totals(self):
        """Integer counter sums are associative and commutative: folding
        per-shard registries in any order gives the serial totals."""
        serial = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(3)]
        for index, amount in enumerate([5, 7, 11]):
            serial.count("campaign.probes.sent", amount)
            shards[index].count("campaign.probes.sent", amount)
        merged = MetricsRegistry()
        for shard in reversed(shards):
            merged.merge(shard)
        assert merged.counters == serial.counters


class TestSerialization:
    def _populated(self):
        registry = MetricsRegistry()
        registry.count("campaign.slash24s", 24)
        registry.gauge("campaign.workers", 4)
        registry.add_seconds("phase.campaign", 1.75, calls=2)
        return registry

    def test_pickle_round_trip(self):
        registry = self._populated()
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counters == registry.counters
        assert clone.gauges == registry.gauges
        assert clone.timers == registry.timers

    def test_to_dict_from_dict_round_trip(self):
        registry = self._populated()
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.counters == registry.counters
        assert clone.gauges == registry.gauges
        assert clone.timers == registry.timers

    def test_to_dict_shape(self):
        document = self._populated().to_dict()
        assert document["counters"] == {"campaign.slash24s": 24}
        assert document["gauges"] == {"campaign.workers": 4}
        assert document["timers"]["phase.campaign"] == {
            "seconds": 1.75,
            "calls": 2,
        }


class TestSubtree:
    def test_prefix_filters_by_dotted_path(self):
        registry = MetricsRegistry()
        registry.count("campaign.probes.sent", 9)
        registry.count("campaign", 1)
        registry.count("campaigns.other", 1)  # not under campaign.
        registry.gauge("campaign.workers", 2)
        registry.add_seconds("campaign.elapsed", 3.0)
        selected = registry.subtree("campaign")
        assert selected == {
            "campaign": 1,
            "campaign.probes.sent": 9,
            "campaign.workers": 2,
            "campaign.elapsed": 3.0,
        }


class TestAmbientScope:
    def test_scope_installs_and_restores(self):
        root = current_metrics()
        with metrics_scope() as scoped:
            assert current_metrics() is scoped
            assert scoped is not root
            with metrics_scope() as inner:
                assert current_metrics() is inner
            assert current_metrics() is scoped
        assert current_metrics() is root

    def test_scope_accepts_registry(self):
        mine = MetricsRegistry()
        with metrics_scope(mine) as scoped:
            assert scoped is mine
            current_metrics().count("hit")
        assert mine.counter_value("hit") == 1
