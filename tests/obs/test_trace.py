"""Tests for the trace journal: write → read → summarize round-trip,
truncated-tail tolerance, and the zero-cost disabled path."""

import json

import pytest

from repro.obs.trace import (
    Tracer,
    configure_tracing,
    span,
    summarize_trace,
    trace_event,
    trace_path_from_env,
    trace_warning,
    tracer,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _reset_tracing():
    """Tests install their own tracer; always restore the disabled one."""
    yield
    configure_tracing(None)


def _read_records(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestJournal:
    def test_records_are_self_contained_json_lines(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        active = Tracer(str(journal))
        active.event("store.opened", records=3)
        with active.span("campaign.run", slash24s=24):
            active.warning("mcl.unconverged", "hit the cap", vertices=9)
        active.close()

        records = _read_records(journal)
        assert [r["kind"] for r in records] == [
            "event", "begin", "warning", "end",
        ]
        assert [r["seq"] for r in records] == [1, 2, 3, 4]
        assert records[0]["records"] == 3
        assert records[1]["name"] == "campaign.run"
        assert records[1]["span"] == records[3]["span"]
        assert records[3]["seconds"] >= 0.0
        assert records[2]["message"] == "hit the cap"

    def test_span_records_error_and_propagates(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        active = Tracer(str(journal))
        with pytest.raises(ValueError):
            with active.span("experiment", id="fig5"):
                raise ValueError("broken runner")
        active.close()
        end = _read_records(journal)[-1]
        assert end["kind"] == "end"
        assert "broken runner" in end["error"]

    def test_rich_attribute_values_stringify(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        active = Tracer(str(journal))
        active.event("store.replay", prefix=object())
        active.close()
        assert isinstance(_read_records(journal)[0]["prefix"], str)

    def test_append_only_across_reconfigure(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        configure_tracing(str(journal))
        trace_event("first")
        configure_tracing(str(journal))  # closes, then reopens appending
        trace_event("second")
        configure_tracing(None)
        names = [r["name"] for r in _read_records(journal)]
        assert names == ["first", "second"]


class TestSummarize:
    def test_round_trip(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        configure_tracing(str(journal))
        for _ in range(3):
            with span("campaign.slash24", prefix="10.0.0.0/24"):
                pass
        trace_event("store.replay")
        trace_event("store.replay")
        configure_tracing(None)

        summary = summarize_trace(str(journal))
        assert summary.clean
        assert summary.corrupt_lines == 0
        assert summary.unclosed_spans == 0
        assert summary.event_counts == {"store.replay": 2}
        entry = summary.spans["campaign.slash24"]
        assert entry.count == 3
        assert entry.errors == 0
        assert entry.total_seconds >= entry.max_seconds >= 0.0
        assert entry.mean_seconds == pytest.approx(entry.total_seconds / 3)

    def test_warnings_make_summary_unclean(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        configure_tracing(str(journal))
        trace_warning("campaign.parallel_fallback", "degraded to serial")
        configure_tracing(None)
        summary = summarize_trace(str(journal))
        assert not summary.clean
        assert summary.warnings[0]["message"] == "degraded to serial"

    def test_truncated_tail_tolerated(self, tmp_path):
        """A killed writer leaves at most one partial final line; the
        summary skips it instead of failing."""
        journal = tmp_path / "trace.jsonl"
        configure_tracing(str(journal))
        with span("campaign.run"):
            pass
        configure_tracing(None)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"seq":99,"kind":"eve')  # no newline: torn write
        summary = summarize_trace(str(journal))
        assert summary.corrupt_lines == 1
        assert not summary.clean
        assert summary.spans["campaign.run"].count == 1

    def test_unclosed_span_reported(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        journal.write_text(
            '{"seq":1,"ts":0,"kind":"begin","name":"phase.campaign","span":1}\n'
        )
        summary = summarize_trace(str(journal))
        assert summary.unclosed_spans == 1

    def test_errored_span_counted(self, tmp_path):
        journal = tmp_path / "trace.jsonl"
        configure_tracing(str(journal))
        with pytest.raises(RuntimeError):
            with span("experiment"):
                raise RuntimeError("boom")
        configure_tracing(None)
        assert summarize_trace(str(journal)).spans["experiment"].errors == 1


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert not tracer().enabled

    def test_span_returns_shared_null_context(self):
        """Zero-cost-when-off: the module-level span() helper hands back
        one shared no-op context manager — no per-call allocation."""
        first = span("campaign.run", slash24s=10)
        second = span("campaign.slash24", prefix=object())
        assert first is second

    def test_emitters_write_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        trace_event("store.replay", prefix="10.0.0.0/24")
        trace_warning("mcl.unconverged", "never journaled")
        with span("campaign.run"):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_disabled_tracer_opens_no_file(self, tmp_path):
        inert = Tracer(None)
        inert.event("x")
        inert.warning("y", "z")
        with inert.span("s"):
            pass
        inert.close()
        assert inert._handle is None


class TestEnvironment:
    def test_env_names_the_journal(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "/tmp/somewhere.jsonl")
        assert trace_path_from_env() == "/tmp/somewhere.jsonl"

    def test_unset_and_empty_mean_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_path_from_env() is None
        monkeypatch.setenv("REPRO_TRACE", "")
        assert trace_path_from_env() is None
