"""Tests for the per-run ``run.json`` manifest."""

import json
import os

from repro.obs.manifest import (
    MANIFEST_NAME,
    build_manifest,
    manifest_path_for,
    phase_wall_clocks,
    write_run_manifest,
)
from repro.obs.metrics import MetricsRegistry


def _registry():
    registry = MetricsRegistry()
    registry.add_seconds("phase.scenario", 0.5)
    registry.add_seconds("phase.campaign", 2.0)
    registry.add_seconds("experiment.table1", 0.1)  # not a phase
    registry.count("netsim.probes", 5000)
    registry.gauge("campaign.workers", 2)
    return registry


class TestPhaseWallClocks:
    def test_strips_prefix_and_keeps_only_phases(self):
        assert phase_wall_clocks(_registry()) == {
            "scenario": 0.5,
            "campaign": 2.0,
        }


class TestBuildManifest:
    def test_core_fields(self):
        document = build_manifest(
            command="run",
            profile="tiny",
            scenario_seed=7,
            workers=2,
            engine="compiled",
            store_path=None,
            trace_path="/tmp/t.jsonl",
            registry=_registry(),
            internet_stats={"probe_count": 5000},
            extra={"experiments": ["table1"]},
        )
        assert document["command"] == "run"
        assert document["profile"] == "tiny"
        assert document["scenario_seed"] == 7
        assert document["workers"] == 2
        assert document["engine"] == "compiled"
        assert document["trace"] == "/tmp/t.jsonl"
        assert document["phases"] == {"scenario": 0.5, "campaign": 2.0}
        assert document["internet_stats"] == {"probe_count": 5000}
        assert document["experiments"] == ["table1"]
        assert document["metrics"]["counters"]["netsim.probes"] == 5000

    def test_probes_per_second_from_campaign_phase(self):
        document = build_manifest(command="run", registry=_registry())
        assert document["campaign_probes_per_second"] == 2500.0

    def test_rate_omitted_without_probes(self):
        document = build_manifest(command="run", registry=MetricsRegistry())
        assert "campaign_probes_per_second" not in document

    def test_registry_optional(self):
        document = build_manifest(command="validate")
        assert "phases" not in document
        assert document["profile"] is None


class TestWriting:
    def test_manifest_lives_next_to_trace(self, tmp_path):
        trace = tmp_path / "results" / "t.jsonl"
        assert manifest_path_for(str(trace)) == str(
            tmp_path / "results" / MANIFEST_NAME
        )

    def test_written_atomically_and_json_readable(self, tmp_path):
        path = str(tmp_path / "run.json")
        document = build_manifest(command="run", registry=_registry())
        assert write_run_manifest(path, document) == path
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["command"] == "run"
        # atomic_writer leaves no temp files behind
        assert os.listdir(tmp_path) == ["run.json"]
