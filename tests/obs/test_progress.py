"""Tests for the rate-limited campaign progress reporter."""

import io

from repro.obs.progress import ProgressReporter, progress_enabled


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _reporter(total=100, interval=1.0):
    clock = FakeClock()
    stream = io.StringIO()
    reporter = ProgressReporter(
        total,
        stream=stream,
        min_interval_seconds=interval,
        clock=clock,
    )
    return reporter, clock, stream


class TestRateLimiting:
    def test_first_update_always_prints(self):
        reporter, _, stream = _reporter()
        assert reporter.update(1) is True
        assert reporter.lines_emitted == 1
        assert "[campaign] 1/100 /24s" in stream.getvalue()

    def test_updates_within_interval_suppressed(self):
        reporter, clock, _ = _reporter()
        reporter.update(1)
        clock.now = 0.5
        assert reporter.update(2) is False
        assert reporter.lines_emitted == 1

    def test_update_after_interval_prints(self):
        reporter, clock, _ = _reporter()
        reporter.update(1)
        clock.now = 1.5
        assert reporter.update(2) is True
        assert reporter.lines_emitted == 2

    def test_force_ignores_rate_limit(self):
        reporter, _, _ = _reporter()
        reporter.update(1)
        assert reporter.update(2, force=True) is True

    def test_finish_prints_final_state(self):
        reporter, _, stream = _reporter(total=10)
        reporter.update(3)
        reporter.finish(probes=500)
        assert "10/10 /24s (100.0%)" in stream.getvalue().splitlines()[-1]


class TestLineContents:
    def test_probe_rate(self):
        reporter, clock, stream = _reporter()
        clock.now = 2.0
        reporter.update(10, probes=1000)
        assert "500 probes/s" in stream.getvalue()

    def test_store_hit_rate_shown_when_lookups_happened(self):
        reporter, _, stream = _reporter()
        reporter.update(10, store_hits=3, store_lookups=4)
        assert "store hit 75.0%" in stream.getvalue()

    def test_store_hit_rate_hidden_without_lookups(self):
        reporter, _, stream = _reporter()
        reporter.update(10)
        assert "store hit" not in stream.getvalue()

    def test_eta_from_completed_fraction(self):
        reporter, clock, stream = _reporter(total=100)
        clock.now = 10.0  # 25 done in 10s -> 75 remaining at 2.5/s = 30s
        reporter.update(25)
        assert "ETA 30s" in stream.getvalue()

    def test_eta_hidden_when_done(self):
        reporter, clock, stream = _reporter(total=10)
        clock.now = 5.0
        reporter.update(10)
        assert "ETA" not in stream.getvalue()

    def test_long_eta_in_minutes(self):
        reporter, clock, stream = _reporter(total=100)
        clock.now = 60.0  # 10 done in 60s -> 90 left at 6s each = 9m
        reporter.update(10)
        assert "ETA 9.0m" in stream.getvalue()

    def test_zero_total_does_not_divide(self):
        reporter, _, stream = _reporter(total=0)
        reporter.update(0)
        assert "(100.0%)" in stream.getvalue()


class CountingSequence:
    """A sized lazy collection whose ``__len__`` is observable.

    Stands in for a lazily-materializing scenario universe
    (``LazySlash24Universe``): sizing it is not free, so the reporter
    must do it exactly once, not per tick.
    """

    def __init__(self, size):
        self.size = size
        self.len_calls = 0

    def __len__(self):
        self.len_calls += 1
        return self.size


class TestLazyTotals:
    def test_total_sized_exactly_once(self):
        universe = CountingSequence(1_000_000)
        clock = FakeClock()
        reporter = ProgressReporter(
            universe,
            stream=io.StringIO(),
            min_interval_seconds=1.0,
            clock=clock,
        )
        assert universe.len_calls == 1
        for tick in range(50):
            clock.now = float(tick * 2)
            reporter.update(tick, probes=tick * 100)
        reporter.finish(probes=5000)
        assert universe.len_calls == 1
        assert reporter.total == 1_000_000

    def test_eta_against_lazy_universe(self):
        universe = CountingSequence(100)
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            universe, stream=stream, min_interval_seconds=1.0, clock=clock
        )
        clock.now = 10.0  # 25 done in 10s -> 75 left at 2.5/s = 30s
        reporter.update(25)
        assert "ETA 30s" in stream.getvalue()
        assert universe.len_calls == 1

    def test_int_total_still_accepted(self):
        reporter, _, stream = _reporter(total=10)
        reporter.update(5)
        assert "5/10" in stream.getvalue()


class TestOptIn:
    def test_disabled_unless_env_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        assert not progress_enabled()
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        assert not progress_enabled()
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert progress_enabled()
