"""Job spec validation, fingerprints, executors, and job records."""

from __future__ import annotations

import pytest

from repro.service import jobs

TINY_CAMPAIGN = {
    "kind": "campaign", "profile": "tiny", "confidence": False,
    "limit": 8,
}


class TestNormalizeSpec:
    def test_defaults_filled_for_campaign(self):
        spec = jobs.normalize_spec(TINY_CAMPAIGN)
        assert spec["workers"] == 1
        assert spec["seed"] is None
        assert spec["pace_seconds"] == 0.0
        assert spec["fresh"] is False
        assert spec["max_destinations"] > 0  # the profile's cap

    def test_unknown_kind_rejected(self):
        with pytest.raises(jobs.SpecError):
            jobs.normalize_spec({"kind": "mystery"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(jobs.SpecError, match="unknown spec keys"):
            jobs.normalize_spec({**TINY_CAMPAIGN, "turbo": True})

    def test_unknown_profile_rejected(self):
        with pytest.raises(jobs.SpecError, match="unknown profile"):
            jobs.normalize_spec({"kind": "campaign", "profile": "huge"})

    def test_bad_scalar_types_rejected(self):
        with pytest.raises(jobs.SpecError):
            jobs.normalize_spec({**TINY_CAMPAIGN, "limit": "ten"})
        with pytest.raises(jobs.SpecError):
            jobs.normalize_spec({**TINY_CAMPAIGN, "limit": 0})
        with pytest.raises(jobs.SpecError):
            jobs.normalize_spec({**TINY_CAMPAIGN, "confidence": "yes"})
        with pytest.raises(jobs.SpecError):
            jobs.normalize_spec({**TINY_CAMPAIGN, "pace_seconds": -1})

    def test_experiment_spec_validates_ids(self):
        spec = jobs.normalize_spec(
            {"kind": "experiment", "profile": "tiny",
             "experiments": ["table1"]}
        )
        assert spec["experiments"] == ["table1"]
        with pytest.raises(jobs.SpecError, match="unknown experiment"):
            jobs.normalize_spec(
                {"kind": "experiment", "profile": "tiny",
                 "experiments": ["tableX"]}
            )

    def test_experiment_all_expands_to_every_id(self):
        from repro.experiments import experiment_ids

        spec = jobs.normalize_spec(
            {"kind": "experiment", "profile": "tiny",
             "experiments": ["all"]}
        )
        assert spec["experiments"] == experiment_ids()

    def test_sleep_bounds(self):
        assert jobs.normalize_spec(
            {"kind": "sleep", "seconds": 2}
        )["seconds"] == 2.0
        with pytest.raises(jobs.SpecError):
            jobs.normalize_spec({"kind": "sleep", "seconds": -1})
        with pytest.raises(jobs.SpecError):
            jobs.normalize_spec({"kind": "sleep", "seconds": 10_000})


class TestFingerprints:
    def test_fingerprint_ignores_key_spelling_order(self):
        a = jobs.normalize_spec(TINY_CAMPAIGN)
        b = jobs.normalize_spec(
            {"limit": 8, "confidence": False, "profile": "tiny",
             "kind": "campaign", "workers": 1}
        )
        assert jobs.spec_fingerprint(a) == jobs.spec_fingerprint(b)

    def test_fresh_flag_does_not_change_the_fingerprint(self):
        a = jobs.normalize_spec(TINY_CAMPAIGN)
        b = jobs.normalize_spec({**TINY_CAMPAIGN, "fresh": True})
        assert jobs.spec_fingerprint(a) == jobs.spec_fingerprint(b)
        assert jobs.result_key_for(a) == jobs.result_key_for(b)

    def test_different_work_different_fingerprint(self):
        a = jobs.normalize_spec(TINY_CAMPAIGN)
        b = jobs.normalize_spec({**TINY_CAMPAIGN, "limit": 9})
        assert jobs.spec_fingerprint(a) != jobs.spec_fingerprint(b)


class TestExecuteCampaign:
    def test_execution_is_deterministic_and_warm_replay_is_free(
        self, tmp_path
    ):
        spec = jobs.normalize_spec(TINY_CAMPAIGN)
        store = str(tmp_path / "store")
        events = []
        first = jobs.execute_spec(
            spec, store,
            on_measurement=lambda m, s, done, total: events.append(
                (str(m.slash24), done, total)
            ),
        )
        assert first["slash24s"] == 8
        assert first["probes_used"] > 0
        assert first["io"]["probes_sent"] > 0
        assert len(events) == 8
        assert events[-1][1:] == (8, 8)

        second = jobs.execute_spec(spec, store)
        assert jobs.deterministic_payload(first) == \
            jobs.deterministic_payload(second)
        # The warm replay never touched the simulated wire.
        assert second["io"]["probes_sent"] == 0

    def test_pace_slows_but_does_not_change_results(self, tmp_path):
        spec = jobs.normalize_spec(
            {"kind": "campaign", "profile": "tiny", "confidence": False,
             "limit": 3, "pace_seconds": 0.01}
        )
        unpaced = jobs.normalize_spec(
            {"kind": "campaign", "profile": "tiny", "confidence": False,
             "limit": 3}
        )
        paced_payload = jobs.execute_spec(spec, str(tmp_path / "a"))
        plain_payload = jobs.execute_spec(unpaced, str(tmp_path / "b"))
        # pace_seconds is real-time throttling only: the virtual world
        # (clock, probes, categories) is untouched, but the spec knob
        # is part of the fingerprint so the two jobs cache separately.
        assert paced_payload["clock_seconds"] == \
            plain_payload["clock_seconds"]
        assert paced_payload["probes_used"] == \
            plain_payload["probes_used"]

    def test_sleep_spec_executes(self):
        spec = jobs.normalize_spec({"kind": "sleep", "seconds": 0.01})
        payload = jobs.execute_spec(spec, None)
        assert payload["kind"] == "sleep"


class TestJobRecords:
    def test_round_trip_and_id_allocation(self, tmp_path):
        root = str(tmp_path)
        spec = jobs.normalize_spec({"kind": "sleep", "seconds": 1})
        record = jobs.JobRecord.create("j000001", spec)
        jobs.save_job(root, record)
        loaded = jobs.load_job(root, "j000001")
        assert loaded is not None
        assert loaded.to_dict() == record.to_dict()
        assert jobs.next_job_id(root) == "j000002"
        assert [r.id for r in jobs.list_jobs(root)] == ["j000001"]

    def test_missing_job_loads_as_none(self, tmp_path):
        assert jobs.load_job(str(tmp_path), "j999999") is None

    def test_stream_append_interleaves_as_lines(self, tmp_path):
        import json

        root = str(tmp_path)
        jobs.append_stream_record(root, "j1", {"kind": "job", "a": 1})
        jobs.append_stream_record(root, "j1", {"kind": "job", "a": 2})
        with open(jobs.stream_path(root, "j1"), encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh]
        assert [line["a"] for line in lines] == [1, 2]
        assert all("ts" in line for line in lines)
