"""HTTP framing unit tests: parsing, limits, response assembly."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import wire


def parse(data: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await wire.read_request(reader)

    return asyncio.run(run())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_query_string_parsed_off_the_path(self):
        request = parse(b"GET /jobs?state=done&n=3 HTTP/1.1\r\n\r\n")
        assert request.path == "/jobs"
        assert request.query == {"state": "done", "n": "3"}

    def test_post_with_content_length_body(self):
        body = json.dumps({"kind": "sleep"}).encode()
        data = (
            b"POST /jobs HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(data)
        assert request.method == "POST"
        assert request.json() == {"kind": "sleep"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line_rejected(self):
        with pytest.raises(wire.WireError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_rejected_with_413(self):
        data = (
            b"POST /jobs HTTP/1.1\r\n"
            b"Content-Length: 999999999\r\n\r\n"
        )
        with pytest.raises(wire.WireError) as excinfo:
            parse(data)
        assert excinfo.value.status == 413

    def test_truncated_body_rejected(self):
        data = b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(wire.WireError) as excinfo:
            parse(data)
        assert excinfo.value.status == 400

    def test_too_many_headers_rejected(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % i for i in range(wire.MAX_HEADER_LINES + 5)
        )
        with pytest.raises(wire.WireError):
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")

    def test_non_object_json_body_rejected(self):
        request = parse(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]"
        )
        with pytest.raises(wire.WireError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_json_response_is_parseable_and_close_delimited(self):
        raw = wire.json_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Connection: close" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"ok": True}

    def test_error_response_carries_status_in_body(self):
        raw = wire.error_response(429, "queue full")
        body = raw.partition(b"\r\n\r\n")[2]
        document = json.loads(body)
        assert document == {"error": "queue full", "status": 429}

    def test_stream_head_has_no_content_length(self):
        head = wire.response_head(
            200, content_type="application/x-ndjson"
        )
        assert b"Content-Length" not in head
        assert b"application/x-ndjson" in head

    def test_ndjson_line_round_trips(self):
        line = wire.ndjson_line({"kind": "event", "name": "x"})
        assert line.endswith(b"\n")
        assert json.loads(line) == {"kind": "event", "name": "x"}
