"""Daemon lifecycle: submit/stream/result, warm serving, cancel/resume,
backpressure, and bit-identity against the one-shot executor."""

from __future__ import annotations

import time

import pytest

from repro.service import ServiceError, jobs

from .conftest import (
    daemon_over,
    slash24_documents,
    wait_for_stream_events,
)

CAMPAIGN_SPEC = {
    "kind": "campaign", "profile": "tiny", "confidence": False,
    "limit": 6,
}
#: Slow enough that cancel lands mid-campaign, fast enough for CI.
PACED_SPEC = {**CAMPAIGN_SPEC, "limit": 8, "pace_seconds": 0.4}


class TestJobLifecycle:
    def test_submit_stream_result_and_warm_repeat(self, tmp_path):
        store = tmp_path / "daemon-store"
        reference_store = tmp_path / "reference-store"
        # The reference: the same normalized spec through the same
        # executor the daemon's workers call — i.e. the one-shot CLI
        # path — in its own store.
        reference = jobs.execute_spec(
            jobs.normalize_spec(CAMPAIGN_SPEC), str(reference_store)
        )
        with daemon_over(store) as (daemon, client):
            submitted = client.submit(CAMPAIGN_SPEC)
            assert submitted["state"] == "queued"
            assert submitted["warm"] is False
            job_id = submitted["id"]

            records = list(client.stream(job_id))
            slash24_events = [
                r for r in records if r.get("name") == "job.slash24"
            ]
            assert len(slash24_events) == 6
            assert slash24_events[-1]["done"] == 6
            assert slash24_events[-1]["total"] == 6
            assert all("prefix" in r and "category" in r
                       for r in slash24_events)
            # Metrics snapshots interleave on the same stream.
            assert any(r.get("kind") == "metrics" for r in records)
            assert records[-1]["kind"] == "stream_end"
            assert records[-1]["state"] == "done"

            status = client.status(job_id)
            assert status["state"] == "done"
            assert status["attempts"] == 1
            assert status["manifest"]["command"].startswith(
                "service-worker"
            )

            payload = client.result(job_id)["result"]["payload"]
            assert jobs.deterministic_payload(payload) == \
                jobs.deterministic_payload(reference)

            # Repeat submission: answered from the store, no worker.
            again = client.submit(CAMPAIGN_SPEC)
            assert again["state"] == "done"
            assert again["warm"] is True
            assert client.status(again["id"])["attempts"] == 0
            warm_payload = client.result(again["id"])
            assert warm_payload["result"]["payload"] == payload

            counters = client.metrics()["metrics"]["counters"]
            assert counters["service.jobs.warm"] == 1
            assert counters["service.jobs.completed"] == 1
            assert counters["service.stream.bytes"] > 0

        # Bit-identity includes the store's per-/24 records: the
        # daemon's store and the one-shot store hold identical
        # measurement documents under identical fingerprint keys.
        daemon_docs = slash24_documents(store)
        reference_docs = slash24_documents(reference_store)
        assert daemon_docs == reference_docs
        assert len(daemon_docs) == 6

    def test_cancel_mid_campaign_then_resume_bit_identically(
        self, tmp_path
    ):
        store = tmp_path / "daemon-store"
        reference_store = tmp_path / "reference-store"
        reference = jobs.execute_spec(
            jobs.normalize_spec(PACED_SPEC), str(reference_store)
        )
        with daemon_over(store) as (daemon, client):
            job_id = client.submit(PACED_SPEC)["id"]
            # Let at least one /24 checkpoint durably, then cancel.
            wait_for_stream_events(store, job_id, "job.slash24")
            cancelled = client.cancel(job_id)
            assert cancelled["state"] == "cancelled"
            deadline = time.monotonic() + 60
            while client.status(job_id)["pid"] is not None:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            status = client.status(job_id)
            assert status["state"] == "cancelled"
            partial = slash24_documents(store)
            assert 0 < len(partial) < 8

            resumed = client.resume(job_id)
            assert resumed["state"] == "queued"
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            assert final["attempts"] == 2
            payload = client.result(job_id)["result"]["payload"]
            assert jobs.deterministic_payload(payload) == \
                jobs.deterministic_payload(reference)
            # The resumed attempt replayed the checkpointed prefix(es)
            # from the store instead of re-probing them.
            wait_for_stream_events(
                store, job_id, "job.start", count=2, timeout=5
            )
            counters = client.metrics()["metrics"]["counters"]
            assert counters["service.jobs.cancelled"] == 1
            assert counters["service.jobs.resumed"] == 1
        assert slash24_documents(store) == \
            slash24_documents(reference_store)

    def test_backpressure_rejects_submits_over_the_queue_bound(
        self, tmp_path
    ):
        with daemon_over(
            tmp_path / "store", max_queued=1, max_concurrent=1
        ) as (daemon, client):
            first = client.submit({"kind": "sleep", "seconds": 30})
            deadline = time.monotonic() + 60
            while client.status(first["id"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.05)
            second = client.submit({"kind": "sleep", "seconds": 31})
            assert second["state"] == "queued"
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"kind": "sleep", "seconds": 32})
            assert excinfo.value.status == 429
            counters = client.metrics()["metrics"]["counters"]
            assert counters["service.jobs.rejected"] == 1
            assert client.metrics()["metrics"]["gauges"][
                "service.queue.depth"
            ] == 1
            client.cancel(second["id"])
            client.cancel(first["id"])
            assert client.wait(first["id"], timeout=60)["state"] == \
                "cancelled"


class TestApiSurface:
    def test_error_routes(self, tmp_path):
        with daemon_over(tmp_path / "store") as (daemon, client):
            with pytest.raises(ServiceError) as excinfo:
                client.status("j424242")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                client.submit({"kind": "nope"})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client.submit({**CAMPAIGN_SPEC, "turbo": True})
            assert excinfo.value.status == 400
            # result of a job that is not done answers 409
            job_id = client.submit({"kind": "sleep", "seconds": 20})["id"]
            with pytest.raises(ServiceError) as excinfo:
                client.result(job_id)
            assert excinfo.value.status == 409
            client.cancel(job_id)
            with pytest.raises(ServiceError) as excinfo:
                client.cancel(job_id)  # already terminal
            assert excinfo.value.status == 409
            client.wait(job_id, timeout=60)

    def test_healthz_jobs_listing_and_discovery_file(self, tmp_path):
        import json
        import os

        store = tmp_path / "store"
        with daemon_over(store) as (daemon, client):
            health = client.healthz()
            assert health["ok"] is True
            assert health["max_concurrent"] >= 1
            info_path = jobs.daemon_info_path(str(store))
            with open(info_path, encoding="utf-8") as handle:
                info = json.load(handle)
            assert info["port"] == daemon.bound_port
            assert info["pid"] == os.getpid()
            job_id = client.submit({"kind": "sleep", "seconds": 0.1})["id"]
            listed = client.jobs()
            assert [job["id"] for job in listed] == [job_id]
            client.wait(job_id, timeout=60)
        # Graceful shutdown withdraws the advertisement.
        assert not os.path.exists(jobs.daemon_info_path(str(store)))
