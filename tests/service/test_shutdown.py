"""Graceful shutdown and restart-resume, end to end with real signals.

The daemon here is a real ``hobbit-repro serve`` subprocess: SIGTERM
must drain (checkpoint) the in-flight job, withdraw the discovery
file, and exit 0; a fresh daemon over the same store must requeue the
interrupted job and finish it bit-identically to a run that was never
interrupted.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import repro
from repro.service import ServiceClient, jobs

from .conftest import (
    daemon_over,
    slash24_documents,
    wait_for_stream_events,
)

PACED_SPEC = {
    "kind": "campaign", "profile": "tiny", "confidence": False,
    "limit": 8, "pace_seconds": 0.4,
}


def spawn_serve(store_root: str) -> subprocess.Popen:
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)
    ))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store", store_root, "--port", "0"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
        stdin=subprocess.DEVNULL,
    )


def wait_for_daemon(store_root: str, timeout: float = 60.0) -> dict:
    path = jobs.daemon_info_path(store_root)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        time.sleep(0.05)
    raise AssertionError("daemon never advertised")


class TestGracefulShutdown:
    def test_sigterm_checkpoints_job_and_restart_resumes_bit_identically(
        self, tmp_path
    ):
        store = str(tmp_path / "store")
        reference_store = str(tmp_path / "reference-store")
        reference = jobs.execute_spec(
            jobs.normalize_spec(PACED_SPEC), reference_store
        )

        proc = spawn_serve(store)
        try:
            info = wait_for_daemon(store)
            client = ServiceClient(port=info["port"])
            job_id = client.submit(PACED_SPEC)["id"]
            # At least one /24 durably checkpointed before the kill.
            wait_for_stream_events(store, job_id, "job.slash24")

            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=60)
            assert returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # The advertisement is withdrawn and the job parked resumable.
        assert not os.path.exists(jobs.daemon_info_path(store))
        record = jobs.load_job(store, job_id)
        assert record is not None
        assert record.state == jobs.STATE_INTERRUPTED
        assert 0 < len(slash24_documents(store)) < 8

        # A fresh daemon over the same store requeues and finishes it.
        with daemon_over(store) as (daemon, client):
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            assert final["attempts"] == 2
            payload = client.result(job_id)["result"]["payload"]
            assert jobs.deterministic_payload(payload) == \
                jobs.deterministic_payload(reference)
            counters = client.metrics()["metrics"]["counters"]
            assert counters["service.jobs.resumed"] == 1
        assert slash24_documents(store) == \
            slash24_documents(reference_store)
