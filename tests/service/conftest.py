"""Fixtures for daemon lifecycle tests.

Daemons under test run on a background thread (``port=0`` picks a free
port) against a per-test store; shutdown is driven through
``request_shutdown`` and always joined, so no socket, store handle or
worker process outlives its test (ResourceWarnings are errors here).
"""

from __future__ import annotations

import contextlib
import json
import threading
import time

import pytest

from repro.service import ServiceClient, ServiceDaemon
from repro.service import jobs as jobs_mod

#: Generous because a worker boots a fresh interpreter (~1-2 s).
DEADLINE_SECONDS = 120.0


@contextlib.contextmanager
def daemon_over(store_root: str, **kwargs):
    daemon = ServiceDaemon(str(store_root), port=0, **kwargs)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()
    assert daemon.started.wait(30), "daemon never bound its port"
    try:
        yield daemon, ServiceClient(port=daemon.bound_port)
    finally:
        daemon.request_shutdown()
        thread.join(DEADLINE_SECONDS)
        assert not thread.is_alive(), "daemon failed to shut down"


@pytest.fixture
def run_daemon():
    return daemon_over


def wait_for_stream_events(
    store_root: str, job_id: str, name: str, count: int = 1,
    timeout: float = DEADLINE_SECONDS,
) -> None:
    """Block until the job's journal holds ``count`` events named
    ``name`` (e.g. the first durable per-/24 checkpoint)."""
    path = jobs_mod.stream_path(str(store_root), job_id)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        seen = 0
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if record.get("name") == name:
                        seen += 1
        except OSError:
            pass
        if seen >= count:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"never saw {count} {name!r} event(s) for {job_id}"
    )


def slash24_documents(store_root: str) -> dict:
    """Every per-/24 measurement record in the store, by key — the
    byte-level object bit-identity assertions compare."""
    from repro.store import KIND_SLASH24, MeasurementStore

    with MeasurementStore(str(store_root)) as store:
        return {
            document["key"]: document
            for document in store.documents()
            if document.get("kind") == KIND_SLASH24
        }
