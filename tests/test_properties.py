"""Cross-cutting property-based tests on core invariants.

These complement the per-module suites with deeper hypothesis checks on
the data structures the whole pipeline leans on.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.aggregation import WeightedGraph, aggregate_identical, mcl
from repro.aggregation.mcl import _normalize_columns
from repro.core import round_robin_order
from repro.net import Prefix, normalize, to_prefixes
from repro.probing import probes_required

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestToPrefixesMinimality:
    @settings(max_examples=80)
    @given(addresses, st.integers(min_value=0, max_value=4095))
    def test_result_is_minimal(self, first, span):
        last = min(first + span, (1 << 32) - 1)
        result = to_prefixes(first, last)
        # Minimality: no two adjacent prefixes in the result can merge
        # into a single aligned prefix.
        for left, right in zip(result, result[1:]):
            if left.length != right.length:
                continue
            parent_len = left.length - 1
            if parent_len < 0:
                continue
            if Prefix.of(left.network, parent_len) == Prefix.of(
                right.network, parent_len
            ):
                pytest.fail(f"{left} and {right} could merge")

    @settings(max_examples=80)
    @given(addresses, st.integers(min_value=0, max_value=4095))
    def test_normalize_of_result_is_identity(self, first, span):
        last = min(first + span, (1 << 32) - 1)
        result = to_prefixes(first, last)
        assert normalize(result) == sorted(result)


class TestNormalizeIdempotent:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 16) - 1),
                st.integers(min_value=16, max_value=32),
            ).map(lambda t: Prefix.of(t[0] << 16, t[1])),
            max_size=20,
        )
    )
    def test_idempotent(self, prefixes):
        once = normalize(prefixes)
        assert normalize(once) == once


class TestMclInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=11),
                st.integers(min_value=0, max_value=11),
                st.floats(min_value=0.05, max_value=1.0),
            ),
            max_size=30,
        )
    )
    def test_clusters_partition_vertices(self, edges):
        graph = WeightedGraph(12)
        for u, v, w in edges:
            if u != v and graph.weight(u, v) == 0.0:
                graph.add_edge(u, v, w)
        result = mcl(graph.to_sparse(), inflation=2.0)
        members = sorted(v for c in result.clusters for v in c)
        assert members == list(range(12))

    def test_normalize_columns_is_stochastic(self):
        rng = np.random.default_rng(1)
        dense = rng.random((6, 6))
        matrix = _normalize_columns(sparse.csc_matrix(dense))
        sums = np.asarray(matrix.sum(axis=0)).ravel()
        assert np.allclose(sums, 1.0)

    def test_normalize_repairs_zero_columns(self):
        matrix = sparse.csc_matrix((3, 3))
        repaired = _normalize_columns(matrix)
        sums = np.asarray(repaired.sum(axis=0)).ravel()
        assert np.allclose(sums, 1.0)


class TestAggregationInvariants:
    @settings(max_examples=40)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=400),
            st.frozensets(
                st.integers(min_value=1, max_value=6), min_size=1, max_size=3
            ),
            max_size=40,
        )
    )
    def test_blocks_partition_input(self, raw):
        sets = {
            Prefix(0x0A000000 + n * 256, 24): lasthops
            for n, lasthops in raw.items()
        }
        blocks = aggregate_identical(sets)
        covered = [p for b in blocks for p in b.slash24s]
        assert sorted(covered) == sorted(sets)
        for block in blocks:
            for slash24 in block.slash24s:
                assert sets[slash24] == block.lasthop_set


class TestRoundRobinProperties:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=255).map(
                lambda o: 0x0A000000 + o
            ),
            min_size=1,
            max_size=40,
            unique=True,
        ),
        st.integers(min_value=0, max_value=1 << 30),
    )
    def test_permutation(self, addrs, seed):
        order = list(round_robin_order(addrs, random.Random(seed)))
        assert sorted(order) == sorted(addrs)


class TestStoppingRuleProperties:
    @given(
        st.integers(min_value=1, max_value=32),
        st.floats(min_value=0.5, max_value=0.999),
    )
    def test_monotone_in_both_arguments(self, observed, confidence):
        base = probes_required(observed, confidence)
        assert probes_required(observed + 1, confidence) > base
        assert base > observed  # always probes beyond what was seen
