"""MeasurementStore: persistence, verification, and compaction."""

import json

import pytest

from repro.store import MeasurementStore, StoreError
from repro.store.codec import HEADER_SIZE, frame_record


def doc(key, value=0):
    return {"key": key, "kind": "artifact", "value": value}


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        with MeasurementStore(tmp_path / "s") as store:
            store.put(doc("k1", 41))
            assert store.get("k1") == doc("k1", 41)
            assert "k1" in store
            assert len(store) == 1
        assert store.get("missing") is None

    def test_survives_reopen(self, tmp_path):
        with MeasurementStore(tmp_path / "s") as store:
            for index in range(40):
                store.put(doc(f"{index:02x}", index))
        with MeasurementStore(tmp_path / "s") as store:
            assert len(store) == 40
            assert store.get("07") == doc("07", 7)

    def test_records_spread_across_shards(self, tmp_path):
        with MeasurementStore(tmp_path / "s", shards=4) as store:
            for index in range(64):
                store.put(doc(f"{index * 7919:08x}", index))
            used = {store._shard_of(key) for key in store.keys()}
        assert len(used) > 1

    def test_same_key_last_write_wins(self, tmp_path):
        with MeasurementStore(tmp_path / "s") as store:
            store.put(doc("k", "old"))
            store.put(doc("k", "new"))
            assert store.get("k") == doc("k", "new")
            assert store.superseded == 1
        with MeasurementStore(tmp_path / "s") as store:
            assert store.get("k") == doc("k", "new")
            assert store.superseded == 1

    def test_shard_count_fixed_at_creation(self, tmp_path):
        MeasurementStore(tmp_path / "s", shards=4).close()
        # A different requested count is ignored for an existing store.
        store = MeasurementStore(tmp_path / "s", shards=32)
        assert store.shards == 4
        store.close()

    def test_version_mismatch_rejected(self, tmp_path):
        MeasurementStore(tmp_path / "s").close()
        meta = tmp_path / "s" / "store.json"
        meta.write_text(json.dumps({"version": 99, "shards": 16}))
        with pytest.raises(StoreError, match="v99"):
            MeasurementStore(tmp_path / "s")

    def test_unreadable_metadata_rejected(self, tmp_path):
        MeasurementStore(tmp_path / "s").close()
        (tmp_path / "s" / "store.json").write_text("not json")
        with pytest.raises(StoreError):
            MeasurementStore(tmp_path / "s")


def _flip_byte_in_record(store_root, key):
    """Flip one payload byte of ``key``'s record on disk."""
    probe = MeasurementStore(store_root)
    shard = probe._shard_of(key)
    probe.close()
    path = store_root / "segments" / f"shard-{shard:02x}.seg"
    target = frame_record(doc(key, "victim"))
    data = bytearray(path.read_bytes())
    start = bytes(data).index(target)
    data[start + HEADER_SIZE] ^= 0xFF
    path.write_bytes(bytes(data))


class TestVerifyAndGc:
    def test_verify_clean(self, tmp_path):
        with MeasurementStore(tmp_path / "s") as store:
            store.put(doc("k1"))
            report = store.verify()
        assert report.clean
        assert report.records_ok == 1

    def test_verify_flags_flipped_byte(self, tmp_path):
        with MeasurementStore(tmp_path / "s") as store:
            store.put(doc("aa", "victim"))
            store.put(doc("bb", "bystander"))
        _flip_byte_in_record(tmp_path / "s", "aa")
        with MeasurementStore(tmp_path / "s") as store:
            report = store.verify()
            assert not report.clean
            assert len(report.corrupt) == 1
            assert "checksum" in report.corrupt[0].reason
            # The damaged record is gone from the index, not the store.
            assert store.get("aa") is None
            assert store.get("bb") == doc("bb", "bystander")

    def test_gc_drops_corrupt_and_superseded(self, tmp_path):
        with MeasurementStore(tmp_path / "s") as store:
            store.put(doc("aa", "victim"))
            store.put(doc("bb", "old"))
            store.put(doc("bb", "new"))
            store.put(doc("cc", 3))
        _flip_byte_in_record(tmp_path / "s", "aa")
        with MeasurementStore(tmp_path / "s") as store:
            dropped = store.gc()
            assert dropped == {
                "dropped_corrupt": 1, "dropped_superseded": 1,
            }
            assert store.verify().clean
            assert store.get("bb") == doc("bb", "new")
            assert store.get("cc") == doc("cc", 3)
            assert len(store) == 2
        # Still clean and complete after reopen.
        with MeasurementStore(tmp_path / "s") as store:
            assert len(store) == 2
            assert store.verify().clean

    def test_gc_noop_on_clean_store(self, tmp_path):
        with MeasurementStore(tmp_path / "s") as store:
            store.put(doc("k1"))
            assert store.gc() == {
                "dropped_corrupt": 0, "dropped_superseded": 0,
            }
            assert store.get("k1") == doc("k1")

    def test_truncated_tail_recovered_on_open(self, tmp_path):
        with MeasurementStore(tmp_path / "s") as store:
            store.put(doc("k1", 1))
            shard = store._shard_of("k1")
        path = tmp_path / "s" / "segments" / f"shard-{shard:02x}.seg"
        with open(path, "ab") as handle:
            handle.write(frame_record(doc("k2", 2))[:-4])  # crash mid-append
        with MeasurementStore(tmp_path / "s") as store:
            assert store.get("k1") == doc("k1", 1)
            assert store.get("k2") is None
            assert store.verify().clean  # tail was trimmed on open


class TestInfo:
    def test_info_counts(self, tmp_path):
        with MeasurementStore(tmp_path / "s") as store:
            store.put(doc("k1"))
            store.put(doc("k2"))
            info = store.info()
        assert info["records"] == 2
        assert info["artifact_records"] == 2
        assert info["slash24_records"] == 0
        assert info["format_version"] == 1
        assert info["bytes"] > 0
