"""Workspace persistent mode: artifact caching and the store property.

Full tiny-profile warm-rerun coverage (zero probes across every stage)
lives in the CI store smoke; here we keep to the cheap stages so the
tier-1 suite stays fast."""

import pytest

from repro.experiments import PROFILES, Workspace
from repro.experiments.common import active_store_path
from repro.store import MeasurementStore


class TestStoreProperty:
    def test_no_store_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        workspace = Workspace(PROFILES["tiny"])
        assert workspace.store_path is None
        assert workspace.store is None

    def test_env_var_attaches_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        assert active_store_path() == str(tmp_path / "env-store")
        workspace = Workspace(PROFILES["tiny"])
        assert workspace.store_path == str(tmp_path / "env-store")
        assert isinstance(workspace.store, MeasurementStore)

    def test_explicit_path_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        workspace = Workspace(
            PROFILES["tiny"], store_path=str(tmp_path / "explicit")
        )
        assert workspace.store_path == str(tmp_path / "explicit")


class TestConfidenceDatasetCaching:
    @pytest.fixture(scope="class")
    def store_root(self, tmp_path_factory):
        return tmp_path_factory.mktemp("ws-store") / "s"

    def test_warm_dataset_is_bit_identical_and_probe_free(self, store_root):
        cold = Workspace(PROFILES["tiny"], store_path=str(store_root))
        cold_dataset = cold.confidence_dataset
        cold_probes = cold.internet.probe_count
        cold_clock = cold.internet.clock_seconds
        assert cold_probes > 0

        warm = Workspace(PROFILES["tiny"], store_path=str(store_root))
        warm_dataset = warm.confidence_dataset
        assert warm.internet.probe_count == 0
        assert warm_dataset == cold_dataset
        assert list(warm_dataset) == list(cold_dataset)  # canonical order
        # The virtual clock is restored too, so later stages line up.
        assert warm.internet.clock_seconds == cold_clock

    def test_storeless_build_matches_stored_build(self, store_root):
        stored = Workspace(PROFILES["tiny"], store_path=str(store_root))
        plain = Workspace(PROFILES["tiny"])
        assert plain.confidence_dataset == stored.confidence_dataset
        assert plain.internet.clock_seconds == stored.internet.clock_seconds
