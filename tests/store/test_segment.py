"""Segment framing, scanning, and crash recovery."""

import pytest

from repro.store.codec import (
    HEADER_SIZE,
    RecordCorrupt,
    decode_payload,
    frame_record,
    parse_header,
)
from repro.store.segment import append, recover, scan


def write_segment(path, documents):
    with open(path, "wb") as handle:
        for document in documents:
            append(handle, frame_record(document), fsync=False)


DOCS = [
    {"key": "aa", "kind": "artifact", "value": 1},
    {"key": "bb", "kind": "artifact", "value": [2, 3]},
    {"key": "cc", "kind": "artifact", "value": {"x": "y"}},
]


class TestFraming:
    def test_round_trip(self):
        frame = frame_record(DOCS[0])
        length, crc = parse_header(frame[:HEADER_SIZE])
        payload = frame[HEADER_SIZE:]
        assert len(payload) == length
        assert decode_payload(payload, crc) == DOCS[0]

    def test_canonical_bytes_are_stable(self):
        assert frame_record({"b": 1, "a": 2}) == frame_record({"a": 2, "b": 1})

    def test_bad_magic_rejected(self):
        with pytest.raises(RecordCorrupt):
            parse_header(b"XXXX" + b"\x00" * (HEADER_SIZE - 4))

    def test_crc_mismatch_rejected(self):
        frame = frame_record(DOCS[0])
        _, crc = parse_header(frame[:HEADER_SIZE])
        with pytest.raises(RecordCorrupt):
            decode_payload(frame[HEADER_SIZE:] + b"", crc ^ 1)


class TestScan:
    def test_intact_segment(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, DOCS)
        outcome = scan(path)
        assert [doc for _, doc in outcome.records] == DOCS
        assert outcome.corrupt == []
        assert not outcome.has_truncated_tail

    def test_truncated_tail_detected(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, DOCS)
        intact_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(frame_record(DOCS[0])[:-3])  # interrupted append
        outcome = scan(path)
        assert outcome.has_truncated_tail
        assert outcome.tail_offset == intact_size
        assert [doc for _, doc in outcome.records] == DOCS

    def test_flipped_byte_flags_one_record(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, DOCS)
        first_length = len(frame_record(DOCS[0]))
        data = bytearray(path.read_bytes())
        data[first_length + HEADER_SIZE + 2] ^= 0xFF  # inside record 2
        path.write_bytes(bytes(data))
        outcome = scan(path)
        # Exactly the damaged record is lost; its neighbours survive.
        assert [doc for _, doc in outcome.records] == [DOCS[0], DOCS[2]]
        assert len(outcome.corrupt) == 1
        assert outcome.corrupt[0].offset == first_length
        assert not outcome.has_truncated_tail

    def test_garbled_header_stops_scan(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, DOCS)
        first_length = len(frame_record(DOCS[0]))
        data = bytearray(path.read_bytes())
        data[first_length] ^= 0xFF  # corrupt record 2's magic
        path.write_bytes(bytes(data))
        outcome = scan(path)
        assert [doc for _, doc in outcome.records] == [DOCS[0]]
        assert len(outcome.corrupt) == 1
        assert outcome.has_truncated_tail  # rest is unreadable


class TestRecover:
    def test_trims_truncated_tail(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, DOCS)
        intact_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\x00\x01\x02")
        outcome = recover(path)
        assert path.stat().st_size == intact_size
        assert outcome.size == intact_size
        assert [doc for _, doc in outcome.records] == DOCS
        # Appending after recovery yields a clean segment again.
        with open(path, "ab") as handle:
            append(handle, frame_record({"key": "dd"}), fsync=False)
        assert not scan(path).has_truncated_tail

    def test_noop_on_clean_segment(self, tmp_path):
        path = tmp_path / "seg"
        write_segment(path, DOCS)
        size = path.stat().st_size
        recover(path)
        assert path.stat().st_size == size
