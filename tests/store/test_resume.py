"""Checkpoint/resume: a campaign killed mid-run and resumed from its
store must be bit-identical to an uninterrupted run — measurements,
insertion order, and probe accounting — serially and in parallel."""

import pytest

from repro.core import TerminationPolicy, run_campaign
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.probing import scan
from repro.probing.session import ProbeBudgetExceeded
from repro.store import MeasurementStore
from repro.store.codec import HEADER_SIZE

SEED = 5
MAX_DESTINATIONS = 48


def _fresh_internet():
    internet = SimulatedInternet.from_config(tiny_scenario(seed=11))
    snapshot = scan(internet)
    return internet, snapshot


def _run(internet, snapshot, slash24s, workers=1, store=None, max_probes=None):
    return run_campaign(
        internet,
        TerminationPolicy(),
        slash24s=slash24s,
        snapshot=snapshot,
        seed=SEED,
        max_probes=max_probes,
        max_destinations_per_slash24=MAX_DESTINATIONS,
        workers=workers,
        store=store,
    )


@pytest.fixture(scope="module")
def selection():
    internet, snapshot = _fresh_internet()
    return snapshot.eligible_slash24s()[:16]


@pytest.fixture(scope="module")
def baseline(selection):
    """The uninterrupted, storeless run every variant must reproduce."""
    internet, snapshot = _fresh_internet()
    result = _run(internet, snapshot, selection)
    return result, internet.probe_count, internet.clock_seconds


def assert_bit_identical(result, internet, baseline):
    base_result, base_probes, base_clock = baseline
    assert result.measurements == base_result.measurements
    assert list(result.measurements) == list(base_result.measurements)
    assert result.probes_used == base_result.probes_used
    assert internet.clock_seconds == base_clock


class CrashInjected(RuntimeError):
    pass


class FlakyStore:
    """Store wrapper whose ``put`` dies after a budget of checkpoints —
    the injected fault simulating a run killed mid-campaign."""

    def __init__(self, store, puts_allowed):
        self.store = store
        self.puts_left = puts_allowed

    def get(self, key):
        return self.store.get(key)

    def put(self, document):
        if self.puts_left <= 0:
            raise CrashInjected("injected crash during checkpoint")
        self.puts_left -= 1
        self.store.put(document)


class TestColdAndWarm:
    def test_cold_run_matches_storeless(self, selection, baseline, tmp_path):
        internet, snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            result = _run(internet, snapshot, selection, store=store)
        assert_bit_identical(result, internet, baseline)
        assert internet.probe_count == baseline[1]

    def test_warm_run_sends_zero_probes(self, selection, baseline, tmp_path):
        internet, snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            _run(internet, snapshot, selection, store=store)
        warm_internet, warm_snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            result = _run(warm_internet, warm_snapshot, selection, store=store)
        assert_bit_identical(result, warm_internet, baseline)
        assert warm_internet.probe_count == 0

    def test_warm_parallel_run_sends_zero_probes(
        self, selection, baseline, tmp_path
    ):
        internet, snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            _run(internet, snapshot, selection, workers=2, store=store)
        warm_internet, warm_snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            result = _run(
                warm_internet, warm_snapshot, selection, workers=2,
                store=store,
            )
        assert_bit_identical(result, warm_internet, baseline)
        assert warm_internet.probe_count == 0

    def test_different_seed_misses_cache(self, selection, tmp_path):
        internet, snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            _run(internet, snapshot, selection, store=store)
        other_internet, other_snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            run_campaign(
                other_internet,
                TerminationPolicy(),
                slash24s=selection,
                snapshot=other_snapshot,
                seed=SEED + 1,
                max_destinations_per_slash24=MAX_DESTINATIONS,
                store=store,
            )
        assert other_internet.probe_count > 0  # nothing replayed


class TestCrashResume:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_killed_run_resumes_bit_identical(
        self, selection, baseline, tmp_path, workers
    ):
        internet, snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            flaky = FlakyStore(store, puts_allowed=5)
            with pytest.raises(CrashInjected):
                _run(
                    internet, snapshot, selection, workers=workers,
                    store=flaky,
                )
        # Reopen the store and resume with a fresh process state.
        resumed_internet, resumed_snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            assert 0 < len(store) < len(selection)  # partial checkpoint
            result = _run(
                resumed_internet, resumed_snapshot, selection,
                workers=workers, store=store,
            )
        assert_bit_identical(result, resumed_internet, baseline)
        # The resumed run only paid for the /24s the crash lost.
        assert 0 < resumed_internet.probe_count < baseline[1]

    def test_repeated_crashes_eventually_finish(
        self, selection, baseline, tmp_path
    ):
        finished = None
        for attempt in range(len(selection) + 1):
            internet, snapshot = _fresh_internet()
            with MeasurementStore(tmp_path / "s") as store:
                flaky = FlakyStore(store, puts_allowed=2)
                try:
                    finished = _run(
                        internet, snapshot, selection, store=flaky
                    )
                    break
                except CrashInjected:
                    continue
        assert finished is not None
        assert_bit_identical(finished, internet, baseline)


def _corrupt_one_stored_record(root):
    """Flip a payload byte of the first record of the first non-empty
    segment; returns nothing — exactly one record becomes unreadable."""
    for path in sorted((root / "segments").iterdir()):
        if path.stat().st_size > 0:
            data = bytearray(path.read_bytes())
            data[HEADER_SIZE + 4] ^= 0xFF
            path.write_bytes(bytes(data))
            return
    raise AssertionError("no segment to corrupt")


class TestCorruption:
    def test_flipped_byte_is_flagged_and_remeasured(
        self, selection, baseline, tmp_path
    ):
        internet, snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            _run(internet, snapshot, selection, store=store)
        _corrupt_one_stored_record(tmp_path / "s")
        warm_internet, warm_snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            report = store.verify()
            assert not report.clean
            assert len(report.corrupt) == 1
            result = _run(warm_internet, warm_snapshot, selection, store=store)
        assert_bit_identical(result, warm_internet, baseline)
        # Only the damaged /24 was re-measured; the rest replayed.
        assert 0 < warm_internet.probe_count < baseline[1]

    def test_truncated_tail_is_recovered_silently(
        self, selection, baseline, tmp_path
    ):
        internet, snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            _run(internet, snapshot, selection, store=store)
        for path in sorted((tmp_path / "s" / "segments").iterdir()):
            if path.stat().st_size > 0:
                with open(path, "ab") as handle:
                    handle.write(b"\xde\xad\xbe")  # interrupted append
                break
        warm_internet, warm_snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            result = _run(warm_internet, warm_snapshot, selection, store=store)
            assert store.verify().clean  # the tail was trimmed on open
        assert_bit_identical(result, warm_internet, baseline)
        assert warm_internet.probe_count == 0


class TestBudgetInteraction:
    def test_replay_charges_budget(self, selection, tmp_path):
        internet, snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            _run(internet, snapshot, selection[:4], store=store)
        total_sent = internet.probe_count
        # A budget below the first four /24s' recorded cost must fail
        # even though every measurement replays from the store.
        warm_internet, warm_snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            with pytest.raises(ProbeBudgetExceeded):
                _run(
                    warm_internet, warm_snapshot, selection[:4],
                    store=store, max_probes=total_sent - 1,
                )

    def test_sufficient_budget_replays_cleanly(
        self, selection, baseline, tmp_path
    ):
        internet, snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            _run(internet, snapshot, selection, store=store)
        total_sent = internet.probe_count
        warm_internet, warm_snapshot = _fresh_internet()
        with MeasurementStore(tmp_path / "s") as store:
            result = _run(
                warm_internet, warm_snapshot, selection, store=store,
                max_probes=total_sent,
            )
        assert_bit_identical(result, warm_internet, baseline)
        assert warm_internet.probe_count == 0
