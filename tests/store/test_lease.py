"""Lease-ledger state machine tests (fake clock, no processes).

The DDHCP-shaped lifecycle under test::

    FREE → TENTATIVE → CLAIMED → DONE
             │             │
             └── lapse ────┴──→ claimable again (steal)
"""

import pytest

from repro.store.lease import (
    DEFAULT_TTL_SECONDS,
    LeaseError,
    LeaseLedger,
    LeaseState,
    ledger_path,
    plan_fingerprint,
    summarize_ledgers,
)

CAMPAIGN = "cafe" * 8

PLAN = [
    [("10.0.0.0/24", [1, 7]), ("10.0.1.0/24", [3])],
    [("10.0.2.0/24", [2])],
    [("10.0.3.0/24", [9, 11, 12])],
]


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def ledger(tmp_path, clock):
    with LeaseLedger(
        str(tmp_path), CAMPAIGN, ttl=10.0, fsync=False, clock=clock
    ) as instance:
        yield instance


class TestPlanning:
    def test_first_plan_is_generation_one(self, ledger):
        assert ledger.plan(PLAN) == 1

    def test_same_plan_is_idempotent(self, ledger):
        assert ledger.plan(PLAN) == 1
        assert ledger.plan(PLAN) == 1  # a resumed run reuses the plan

    def test_resume_keeps_done_state(self, ledger):
        generation = ledger.plan(PLAN)
        claim, _ = ledger.claim("w1", generation)
        ledger.mark_done(claim)
        assert ledger.plan(PLAN) == generation
        state = ledger.state()
        assert state.batches[claim.batch].state is LeaseState.DONE

    def test_different_plan_starts_new_generation(self, ledger):
        assert ledger.plan(PLAN) == 1
        assert ledger.plan(PLAN[:2]) == 2
        state = ledger.state()
        assert state.generation == 2
        assert len(state.batches) == 2

    def test_old_generation_claims_rejected(self, ledger):
        ledger.plan(PLAN)
        ledger.plan(PLAN[:2])
        with pytest.raises(LeaseError):
            ledger.claim("w1", 1)

    def test_plan_fingerprint_covers_active_lists(self):
        changed = [[("10.0.0.0/24", [1, 8]), ("10.0.1.0/24", [3])]] + PLAN[1:]
        assert plan_fingerprint(PLAN) != plan_fingerprint(changed)

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseLedger(str(tmp_path), CAMPAIGN, ttl=0.0)


class TestClaiming:
    def test_claim_takes_lowest_free_batch(self, ledger):
        generation = ledger.plan(PLAN)
        claim, done = ledger.claim("w1", generation)
        assert not done
        assert claim.batch == 0
        assert claim.slash24s == PLAN[0]
        assert not claim.stolen
        second, _ = ledger.claim("w2", generation)
        assert second.batch == 1

    def test_fresh_claim_is_tentative(self, ledger, clock):
        generation = ledger.plan(PLAN)
        claim, _ = ledger.claim("w1", generation)
        state = ledger.state()
        lease = state.batches[claim.batch]
        assert lease.state is LeaseState.TENTATIVE
        assert lease.owner == "w1"
        assert lease.deadline == clock.now + ledger.tentative_ttl

    def test_all_leased_means_back_off(self, ledger):
        generation = ledger.plan(PLAN)
        for index in range(len(PLAN)):
            ledger.claim(f"w{index}", generation)
        claim, done = ledger.claim("late", generation)
        assert claim is None
        assert not done  # not finished — just nothing claimable yet

    def test_campaign_done_signalled(self, ledger):
        generation = ledger.plan(PLAN)
        for _ in PLAN:
            claim, _ = ledger.claim("w1", generation)
            ledger.mark_done(claim)
        claim, done = ledger.claim("w1", generation)
        assert claim is None
        assert done


class TestRenewal:
    def test_first_renew_promotes_to_claimed(self, ledger, clock):
        generation = ledger.plan(PLAN)
        claim, _ = ledger.claim("w1", generation)
        assert ledger.renew(claim)
        lease = ledger.state().batches[claim.batch]
        assert lease.state is LeaseState.CLAIMED
        assert lease.deadline == clock.now + ledger.ttl

    def test_fresh_renewals_elided(self, ledger):
        generation = ledger.plan(PLAN)
        claim, _ = ledger.claim("w1", generation)
        for _ in range(5):
            assert ledger.renew(claim)
        # one promotion; the rest only verified ownership
        assert ledger.state().batches[claim.batch].renews == 1

    def test_renewal_extends_near_expiry(self, ledger, clock):
        generation = ledger.plan(PLAN)
        claim, _ = ledger.claim("w1", generation)
        assert ledger.renew(claim)
        clock.advance(ledger.ttl * 0.75)
        assert ledger.renew(claim)
        lease = ledger.state().batches[claim.batch]
        assert lease.renews == 2
        assert lease.deadline == clock.now + ledger.ttl

    def test_renew_after_steal_fails(self, ledger, clock):
        generation = ledger.plan(PLAN)
        original, _ = ledger.claim("w1", generation)
        ledger.claim("wb", generation)
        ledger.claim("wc", generation)  # no FREE batches remain
        clock.advance(ledger.tentative_ttl + 1)
        thief, _ = ledger.claim("w2", generation)
        assert thief.batch == original.batch
        assert not ledger.renew(original)  # displaced owner must stop
        assert ledger.renew(thief)


class TestLapseAndSteal:
    def test_tentative_lapses_quickly(self, ledger, clock):
        generation = ledger.plan(PLAN)
        ledger.claim("w1", generation)
        for _ in range(2):  # occupy the remaining FREE batches
            done, _ = ledger.claim("w2", generation)
            ledger.mark_done(done)
        clock.advance(ledger.tentative_ttl + 0.1)
        claim, _ = ledger.claim("w2", generation)
        assert claim.batch == 0
        assert claim.stolen
        assert ledger.state().batches[0].steals == 1

    def test_claimed_survives_tentative_window(self, ledger, clock):
        generation = ledger.plan(PLAN)
        claim, _ = ledger.claim("w1", generation)
        ledger.renew(claim)  # promoted: full TTL now applies
        clock.advance(ledger.tentative_ttl + 0.1)
        other, _ = ledger.claim("w2", generation)
        assert other.batch == 1  # batch 0 still held

    def test_free_batches_preferred_over_lapsed(self, ledger, clock):
        generation = ledger.plan(PLAN)
        ledger.claim("w1", generation)
        clock.advance(ledger.tentative_ttl + 1)
        claim, _ = ledger.claim("w2", generation)
        # batch 0 lapsed, but batch 1 is FREE — take the free one first
        assert claim.batch == 1
        assert not claim.stolen

    def test_takeover_owners_claimable_before_lapse(self, ledger):
        generation = ledger.plan(PLAN)
        ledger.claim("w1", generation)
        ledger.claim("w2", generation)
        ledger.claim("w3", generation)  # no FREE batches remain
        blocked, _ = ledger.claim("parent", generation)
        assert blocked is None  # every lease is still live
        claim, _ = ledger.claim(
            "parent", generation, takeover_owners={"w1"}
        )
        assert claim.batch == 0  # w1 known-dead: no need to wait

    def test_done_is_terminal(self, ledger, clock):
        generation = ledger.plan(PLAN)
        claim, _ = ledger.claim("w1", generation)
        ledger.mark_done(claim)
        clock.advance(ledger.ttl * 10)
        other, _ = ledger.claim("w2", generation)
        assert other.batch != claim.batch

    def test_done_accepted_from_stale_owner(self, ledger, clock):
        """A displaced owner finishing 'its' batch is harmless — its
        records are byte-identical to the thief's."""
        generation = ledger.plan(PLAN)
        original, _ = ledger.claim("w1", generation)
        clock.advance(ledger.tentative_ttl + 1)
        ledger.claim("w2", generation)
        ledger.mark_done(original)
        assert ledger.state().batches[0].state is LeaseState.DONE


class TestDurability:
    def test_torn_tail_trimmed_on_next_claim(self, tmp_path, clock):
        with LeaseLedger(
            str(tmp_path), CAMPAIGN, ttl=10.0, fsync=False, clock=clock
        ) as ledger:
            generation = ledger.plan(PLAN)
            path = ledger_path(str(tmp_path), CAMPAIGN)
            with open(path, "ab") as handle:
                handle.write(b"HBS1\x00\x00\x00\x99partial")  # killed mid-append
            claim, _ = ledger.claim("w1", generation)
            assert claim.batch == 0
            state = ledger.state()
            assert state.batches[0].owner == "w1"

    def test_exit_records_folded(self, ledger):
        generation = ledger.plan(PLAN)
        ledger.record_exit(
            "w1", generation, engine_seconds=1.5, checkpoints=4
        )
        state = ledger.state()
        assert state.exits["w1"]["engine_seconds"] == 1.5
        assert state.exits["w1"]["checkpoints"] == 4

    def test_reopened_ledger_sees_everything(self, tmp_path, clock):
        with LeaseLedger(
            str(tmp_path), CAMPAIGN, ttl=10.0, fsync=False, clock=clock
        ) as ledger:
            generation = ledger.plan(PLAN)
            claim, _ = ledger.claim("w1", generation)
            ledger.mark_done(claim)
        with LeaseLedger(
            str(tmp_path), CAMPAIGN, ttl=10.0, fsync=False, clock=clock
        ) as reopened:
            state = reopened.state()
            assert state.generation == generation
            assert state.batches[0].state is LeaseState.DONE

    def test_summarize_ledgers(self, tmp_path, clock):
        with LeaseLedger(
            str(tmp_path), CAMPAIGN, ttl=10.0, fsync=False, clock=clock
        ) as ledger:
            generation = ledger.plan(PLAN)
            claim, _ = ledger.claim("w1", generation)
            ledger.mark_done(claim)
        (summary,) = summarize_ledgers(str(tmp_path))
        assert summary["campaign"] == CAMPAIGN
        assert summary["batches"] == len(PLAN)
        assert summary["done"] == 1
        assert summary["slash24s"] == sum(len(batch) for batch in PLAN)
        assert summary["slash24s_done"] == len(PLAN[0])

    def test_empty_store_has_no_ledgers(self, tmp_path):
        assert summarize_ledgers(str(tmp_path)) == []

    def test_default_ttl_is_sane(self):
        assert 0 < DEFAULT_TTL_SECONDS <= 120
