"""Shared fixtures.

The tiny scenario builds in well under a second, so probing tests get a
*fresh* internet (the simulator is stateful: virtual clock, rate-limiter
buckets, cellular radio state), while read-only structural tests share a
session-scoped one.
"""

from __future__ import annotations

import pytest

from repro.netsim import ScenarioConfig, SimulatedInternet, tiny_scenario
from repro.probing import Prober, scan


@pytest.fixture(scope="session")
def tiny_config() -> ScenarioConfig:
    return tiny_scenario(seed=7)


@pytest.fixture(scope="session")
def shared_internet(tiny_config) -> SimulatedInternet:
    """Session-scoped internet for read-only (non-probing) tests."""
    return SimulatedInternet.from_config(tiny_config)


@pytest.fixture(scope="session")
def shared_snapshot(shared_internet):
    """ZMap snapshot at the configured snapshot epoch (read-only)."""
    return scan(shared_internet)


@pytest.fixture()
def internet(tiny_config) -> SimulatedInternet:
    """A fresh internet per test; safe to probe and mutate."""
    return SimulatedInternet.from_config(tiny_config)


@pytest.fixture()
def prober(internet) -> Prober:
    return Prober(internet)


@pytest.fixture()
def snapshot(internet):
    return scan(internet)
