"""Benchmark: regenerate Figure 11 (topology-discovery efficiency curves)."""

from _driver import run_experiment_bench


def bench_fig11(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig11")
