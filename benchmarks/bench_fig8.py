"""Benchmark: regenerate Figure 8 (numerical adjacency of the top blocks)."""

from _driver import run_experiment_bench


def bench_fig8(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig8")
