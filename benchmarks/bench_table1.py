"""Benchmark: regenerate Table 1 (the homogeneity classification counts)."""

from _driver import run_experiment_bench


def bench_table1(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "table1")
