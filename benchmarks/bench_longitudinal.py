"""Benchmark: regenerate the longitudinal extension experiment."""

from _driver import run_experiment_bench


def bench_longitudinal(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "longitudinal")
