#!/usr/bin/env python
"""Faulty-worker smoke: a SIGKILLed worker must not change the campaign.

Runs the measurement campaign twice on the same profile — once serial
(the baseline), once with ``--workers N`` where one worker kills itself
mid-batch via ``REPRO_LEASE_KILL`` — and fails unless the killed run is
bit-identical to the baseline: same result columns, same end-of-campaign
virtual clock, same probe count. Also asserts the death was *observed*
(``campaign.parallel.lease.workers_lost``) so the gate cannot pass
vacuously if the kill hook stops firing.

CI runs this on the ``paper-smoke`` profile; locally ``--profile small``
finishes in seconds:

    PYTHONPATH=src python benchmarks/faulty_worker_smoke.py --profile small
"""

import argparse
import hashlib
import os
import sys
import tempfile


def result_digest(result) -> str:
    # Canonical row form rather than raw memory: a replayed measurement
    # holds equal values in different concrete shapes (numpy scalars,
    # key-sorted observation dicts from canonical-JSON store records, and
    # the ragged-pool layouts that follow from them), so repr()/tobytes()
    # are not stable identities — plain ints and sorted collections are.
    digest = hashlib.sha256()
    for m in result:
        row = (
            str(m.slash24),
            m.category.name,
            None if m.stop_reason is None else m.stop_reason.name,
            int(m.destinations_probed),
            int(m.hosts_responsive),
            int(m.probes_used),
            sorted(
                (int(dst), sorted(int(hop) for hop in hops))
                for dst, hops in m.observations.items()
            ),
        )
        digest.update(repr(row).encode())
    return digest.hexdigest()


def run_once(
    profile_name, workers, store_path, registry=None, result_format=None
):
    from repro.core import TerminationPolicy, run_campaign
    from repro.experiments import PROFILES, Workspace
    from repro.store import MeasurementStore

    with Workspace(PROFILES[profile_name], workers=1, store_path=None) as ws:
        policy = TerminationPolicy(confidence_table=ws.confidence_table)
        store = MeasurementStore(store_path) if store_path else None
        try:
            result = run_campaign(
                ws.internet,
                policy,
                snapshot=ws.snapshot,
                seed=ws.internet.config.seed ^ 0xCA11,
                max_destinations_per_slash24=(
                    ws.profile.campaign_max_destinations
                ),
                workers=workers,
                store=store,
                result_format=(
                    result_format or ws.profile.campaign_result_format
                ),
                metrics=registry,
            )
        finally:
            if store is not None:
                store.close()
        return (
            result_digest(result),
            ws.internet.clock_seconds,
            ws.internet.probe_count,
            len(result.measurements),
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="paper-smoke")
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument(
        "--kill", default="0:3",
        help="REPRO_LEASE_KILL spec: worker 0 dies after 3 checkpoints",
    )
    parser.add_argument(
        "--ttl", default="3.0",
        help="lease TTL in seconds (short: the steal happens in test time)",
    )
    parser.add_argument(
        "--result-format", default=None, choices=("object", "columnar"),
        help="campaign result format (default: the profile's)",
    )
    args = parser.parse_args(argv)

    from repro.obs.metrics import MetricsRegistry

    print(f"[1/2] serial baseline on {args.profile!r} ...", flush=True)
    baseline = run_once(
        args.profile, workers=1, store_path=None,
        result_format=args.result_format,
    )
    print(
        f"      {baseline[3]} /24s, clock={baseline[1]:.3f}, "
        f"probes={baseline[2]}",
        flush=True,
    )

    print(
        f"[2/2] workers={args.workers} with REPRO_LEASE_KILL={args.kill} ...",
        flush=True,
    )
    os.environ["REPRO_LEASE_KILL"] = args.kill
    os.environ["REPRO_LEASE_TTL"] = args.ttl
    registry = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="faulty-smoke-") as tmp:
        killed = run_once(
            args.profile, workers=args.workers,
            store_path=os.path.join(tmp, "store"), registry=registry,
            result_format=args.result_format,
        )

    lost = registry.counter_value("campaign.parallel.lease.workers_lost")
    steals = registry.counter_value("campaign.parallel.lease.steals")
    takeovers = registry.counter_value("campaign.parallel.lease.takeover")
    print(
        f"      workers_lost={lost} steals={steals} takeovers={takeovers}",
        flush=True,
    )

    failures = []
    if lost < 1:
        failures.append("no worker was lost — the kill hook did not fire")
    if steals + takeovers < 1:
        failures.append("dead worker's lease was never re-claimed")
    for label, index in (("result", 0), ("clock", 1), ("probes", 2)):
        if baseline[index] != killed[index]:
            failures.append(
                f"{label} diverged: serial={baseline[index]} "
                f"killed-run={killed[index]}"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "OK: killed-worker campaign is bit-identical to the serial baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
