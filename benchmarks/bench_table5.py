"""Benchmark: regenerate Table 5 (the largest homogeneous blocks and their owners)."""

from _driver import run_experiment_bench


def bench_table5(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "table5")
