"""Campaign-pipeline benchmark: per-phase wall-clocks from the registry.

Builds the full experiment pipeline (scenario → snapshot → confidence
table → campaign → aggregation → path dataset) under a fresh metrics
registry and emits the observability layer's own accounting —
per-phase wall-clock seconds, campaign probes/sec, probe and store
counters — as a machine-readable summary (``BENCH_campaign.json`` by
default). With ``--trace`` the run also appends the trace journal and
writes the ``run.json`` manifest next to it, so CI can upload the full
observability artifact set alongside the numbers.

Usage::

    PYTHONPATH=src python benchmarks/campaign_bench.py \
        [--out BENCH_campaign.json] [--profile tiny] [--workers 2] \
        [--trace BENCH_campaign_trace.jsonl] [--store PATH]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import PROFILES, Workspace  # noqa: E402
from repro.netsim.routing import reference_engine_enabled  # noqa: E402
from repro.obs import (  # noqa: E402
    build_manifest,
    configure_tracing,
    manifest_path_for,
    metrics_scope,
    phase_wall_clocks,
    tracer,
    write_run_manifest,
)


def run(profile_name, workers, trace_path, store_path):
    configure_tracing(trace_path)
    workspace = Workspace(
        PROFILES[profile_name], workers=workers, store_path=store_path
    )
    with metrics_scope() as registry:
        started = time.perf_counter()
        workspace.ensure_built()
        elapsed = time.perf_counter() - started

    phases = phase_wall_clocks(registry)
    campaign_seconds = registry.timer_seconds("phase.campaign")
    probes = registry.counter_value("netsim.probes")
    document = {
        "benchmark": "campaign",
        "profile": profile_name,
        "workers": workspace.workers,
        "engine": "reference" if reference_engine_enabled() else "compiled",
        "store": store_path,
        "total_seconds": round(elapsed, 3),
        "phases": {name: round(seconds, 3) for name, seconds in phases.items()},
        "campaign_seconds": round(campaign_seconds, 3),
        "campaign_probes": probes,
        "campaign_probes_per_second": (
            round(probes / campaign_seconds, 1) if campaign_seconds else None
        ),
        "campaign_parallel": registry.counter_value("campaign.parallel"),
        "campaign_parallel_fallback": registry.counter_value(
            "campaign.parallel_fallback"
        ),
        "store_hits": registry.counter_value("campaign.store.hits"),
        "store_misses": registry.counter_value("campaign.store.misses"),
        "slash24s_measured": registry.counter_value("campaign.slash24s"),
        "internet_stats": workspace.internet.stats(),
    }

    if trace_path is not None:
        manifest = build_manifest(
            command="campaign_bench",
            profile=profile_name,
            scenario_seed=workspace.profile.scenario_seed,
            workers=workspace.workers,
            engine=document["engine"],
            store_path=store_path,
            trace_path=os.path.abspath(trace_path),
            registry=registry,
            internet_stats=document["internet_stats"],
        )
        write_run_manifest(manifest_path_for(trace_path), manifest)
    tracer().close()
    configure_tracing(None)
    return document


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_campaign.json")
    parser.add_argument(
        "--profile", default="tiny", choices=sorted(PROFILES)
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--trace", default=None, metavar="PATH")
    parser.add_argument("--store", default=None, metavar="PATH")
    args = parser.parse_args(argv)

    document = run(args.profile, args.workers, args.trace, args.store)
    rendered = json.dumps(document, indent=2, sort_keys=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(rendered + "\n")
    print(rendered)
    rate = document["campaign_probes_per_second"]
    print(
        f"campaign: {document['slash24s_measured']} /24s, "
        f"{document['campaign_probes']} probes in "
        f"{document['campaign_seconds']}s"
        + (f" ({rate:,.0f} probes/s)" if rate else "")
    )


if __name__ == "__main__":
    main()
