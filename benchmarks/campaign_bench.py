"""Campaign-pipeline benchmark: per-phase wall-clocks from the registry.

Builds the full experiment pipeline (scenario → snapshot → confidence
table → campaign → aggregation → path dataset) under a fresh metrics
registry and emits the observability layer's own accounting —
per-phase wall-clock seconds, campaign probes/sec, peak RSS, probe and
store counters — as a machine-readable summary
(``BENCH_campaign.json`` by default). With ``--trace`` the run also
appends the trace journal and writes the ``run.json`` manifest next to
it, so CI can upload the full observability artifact set alongside the
numbers.

Two regression-gate features:

* ``--compare-engines N`` re-measures a sample of N /24s under both
  the object-path campaign engine and the columnar fast engine (the
  results are bit-identical; only wall-clock differs) and reports
  both rates plus their ratio.
* ``--baseline PATH`` compares this run's campaign probes/sec against
  a committed snapshot and exits non-zero on a >20% regression.

Usage::

    PYTHONPATH=src python benchmarks/campaign_bench.py \
        [--out BENCH_campaign.json] [--profile tiny] [--workers 2] \
        [--trace BENCH_campaign_trace.jsonl] [--store PATH] \
        [--compare-engines 400] [--baseline benchmarks/baselines/...json]
"""

import argparse
import json
import os
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import TerminationPolicy, run_campaign  # noqa: E402
from repro.core.fastengine import (  # noqa: E402
    CAMPAIGN_ENGINE_ENV,
    campaign_engine_name,
)
from repro.experiments import PROFILES, Workspace  # noqa: E402
from repro.netsim.routing import reference_engine_enabled  # noqa: E402
from repro.obs import (  # noqa: E402
    build_manifest,
    configure_tracing,
    manifest_path_for,
    metrics_scope,
    phase_wall_clocks,
    tracer,
    write_run_manifest,
)

#: Tolerated probes/sec drop against the committed baseline snapshot.
REGRESSION_TOLERANCE = 0.20


def _peak_rss_mb():
    """Peak resident set size of this process so far, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


def _compare_engines(workspace, sample_size):
    """Time the same /24 sample under the object and columnar campaign
    engines (identical results; pure wall-clock comparison)."""
    internet = workspace.internet
    snapshot = workspace.snapshot
    eligible = snapshot.eligible_slash24s()
    stride = max(1, len(eligible) // max(sample_size, 1))
    sample = eligible[::stride][:sample_size]
    policy = TerminationPolicy(confidence_table=workspace.confidence_table)
    rates = {}
    previous = os.environ.get(CAMPAIGN_ENGINE_ENV)
    try:
        for engine in ("object", "columnar"):
            os.environ[CAMPAIGN_ENGINE_ENV] = engine
            probes_before = internet.probe_count
            started = time.perf_counter()
            run_campaign(
                internet,
                policy,
                slash24s=sample,
                snapshot=snapshot,
                seed=internet.config.seed ^ 0xBE7C,
                max_destinations_per_slash24=(
                    workspace.profile.campaign_max_destinations
                ),
            )
            elapsed = time.perf_counter() - started
            probes = internet.probe_count - probes_before
            rates[engine] = {
                "slash24s": len(sample),
                "probes": probes,
                "seconds": round(elapsed, 3),
                "probes_per_second": (
                    round(probes / elapsed, 1) if elapsed else None
                ),
            }
    finally:
        if previous is None:
            os.environ.pop(CAMPAIGN_ENGINE_ENV, None)
        else:
            os.environ[CAMPAIGN_ENGINE_ENV] = previous
    slow = rates["object"]["probes_per_second"] or 0.0
    fast = rates["columnar"]["probes_per_second"] or 0.0
    rates["columnar_speedup"] = round(fast / slow, 2) if slow else None
    return rates


def run(profile_name, workers, trace_path, store_path, compare_engines=0):
    configure_tracing(trace_path)
    workspace = Workspace(
        PROFILES[profile_name], workers=workers, store_path=store_path
    )
    with metrics_scope() as registry:
        started = time.perf_counter()
        workspace.ensure_built()
        elapsed = time.perf_counter() - started
        comparison = (
            _compare_engines(workspace, compare_engines)
            if compare_engines
            else None
        )

    phases = phase_wall_clocks(registry)
    campaign_seconds = registry.timer_seconds("phase.campaign")
    probes = registry.counter_value("netsim.probes")
    document = {
        "benchmark": "campaign",
        "profile": profile_name,
        "workers": workspace.workers,
        "engine": "reference" if reference_engine_enabled() else "compiled",
        "campaign_engine": campaign_engine_name(),
        "result_format": workspace.profile.campaign_result_format,
        "store": store_path,
        "total_seconds": round(elapsed, 3),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "phases": {name: round(seconds, 3) for name, seconds in phases.items()},
        "campaign_seconds": round(campaign_seconds, 3),
        "campaign_probes": probes,
        "campaign_probes_per_second": (
            round(probes / campaign_seconds, 1) if campaign_seconds else None
        ),
        "campaign_parallel": registry.counter_value("campaign.parallel"),
        "campaign_parallel_fallback": registry.counter_value(
            "campaign.parallel_fallback"
        ),
        "store_hits": registry.counter_value("campaign.store.hits"),
        "store_misses": registry.counter_value("campaign.store.misses"),
        "slash24s_measured": registry.counter_value("campaign.slash24s"),
        "internet_stats": workspace.internet.stats(),
    }
    if comparison is not None:
        document["engine_comparison"] = comparison

    if trace_path is not None:
        manifest = build_manifest(
            command="campaign_bench",
            profile=profile_name,
            scenario_seed=workspace.profile.scenario_seed,
            workers=workspace.workers,
            engine=document["engine"],
            store_path=store_path,
            trace_path=os.path.abspath(trace_path),
            registry=registry,
            internet_stats=document["internet_stats"],
        )
        write_run_manifest(manifest_path_for(trace_path), manifest)
    tracer().close()
    configure_tracing(None)
    return document


def check_baseline(document, baseline_path):
    """Compare against a committed snapshot; returns (ok, message)."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    reference = baseline.get("campaign_probes_per_second")
    current = document.get("campaign_probes_per_second")
    if not reference or not current:
        return True, "baseline: no probes/sec to compare"
    floor = reference * (1.0 - REGRESSION_TOLERANCE)
    if current < floor:
        return False, (
            f"REGRESSION: campaign probes/sec {current:,.0f} is more than "
            f"{REGRESSION_TOLERANCE:.0%} below the baseline "
            f"{reference:,.0f} (floor {floor:,.0f})"
        )
    return True, (
        f"baseline ok: {current:,.0f} probes/s vs baseline "
        f"{reference:,.0f} (floor {floor:,.0f})"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_campaign.json")
    parser.add_argument(
        "--profile", default="tiny", choices=sorted(PROFILES)
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--trace", default=None, metavar="PATH")
    parser.add_argument("--store", default=None, metavar="PATH")
    parser.add_argument(
        "--compare-engines", type=int, default=0, metavar="N",
        help="also time N sampled /24s under the object vs columnar "
        "campaign engines",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed BENCH_campaign.json snapshot; exit non-zero if "
        "probes/sec regressed more than "
        f"{REGRESSION_TOLERANCE:.0%}".replace("%", "%%"),
    )
    args = parser.parse_args(argv)

    document = run(
        args.profile, args.workers, args.trace, args.store,
        compare_engines=args.compare_engines,
    )
    rendered = json.dumps(document, indent=2, sort_keys=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(rendered + "\n")
    print(rendered)
    rate = document["campaign_probes_per_second"]
    print(
        f"campaign: {document['slash24s_measured']} /24s, "
        f"{document['campaign_probes']} probes in "
        f"{document['campaign_seconds']}s"
        + (f" ({rate:,.0f} probes/s)" if rate else "")
        + f" | peak RSS {document['peak_rss_mb']} MB"
    )
    if args.baseline is not None:
        ok, message = check_baseline(document, args.baseline)
        print(message)
        if not ok:
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
