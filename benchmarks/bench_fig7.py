"""Benchmark: regenerate Figure 7 (longest-common-prefix length distributions)."""

from _driver import run_experiment_bench


def bench_fig7(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig7")
