"""Benchmark: regenerate Table 4 (WHOIS records verifying split /24s)."""

from _driver import run_experiment_bench


def bench_table4(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "table4")
