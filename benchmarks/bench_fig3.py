"""Benchmark: regenerate Figure 3 (cardinality and probed-address CDFs)."""

from _driver import run_experiment_bench


def bench_fig3(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig3")
