"""Aggregation benchmark: object vs columnar engines on one campaign.

Builds the campaign for a profile, takes its measured last-hop sets,
and runs the Sections 5-6 aggregation flow under both engines —
``object`` (the retained dict-based reference path, serial) and
``columnar`` (hashed-key grouping, sparse incidence-matrix similarity,
parallel per-component MCL) — verifying the outputs are identical and
reporting graph-build seconds, MCL seconds, peak RSS and blocks/sec as
a machine-readable summary (``BENCH_aggregation.json`` by default).
Validation reprobing is disabled so both engines aggregate the same
immutable inputs and the comparison is pure wall-clock.

``--baseline PATH`` compares this run's columnar blocks/sec against a
committed snapshot and exits 2 on a >20% regression — the same
contract as ``campaign_bench.py --baseline``.

Usage::

    PYTHONPATH=src python benchmarks/aggregation_bench.py \
        [--out BENCH_aggregation.json] [--profile paper-smoke] \
        [--workers 4] [--store PATH] [--trace PATH] \
        [--baseline benchmarks/baselines/BENCH_aggregation_paper-smoke.json]
"""

import argparse
import json
import os
import resource
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.aggregation import (  # noqa: E402
    aggregate_identical,
    build_similarity_graph,
    build_similarity_graph_columnar,
    group_identical_columnar,
    run_aggregation,
)
from repro.experiments import PROFILES, Workspace  # noqa: E402
from repro.obs import (  # noqa: E402
    build_manifest,
    configure_tracing,
    manifest_path_for,
    metrics_scope,
    phase_wall_clocks,
    tracer,
    write_run_manifest,
)

#: Tolerated blocks/sec drop against the committed baseline snapshot.
REGRESSION_TOLERANCE = 0.20


def _peak_rss_mb():
    """Peak resident set size of this process so far, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


def _outputs_key(outcome):
    """The comparable output surface of an aggregation run."""
    return (
        outcome.identical_blocks,
        outcome.inflation,
        outcome.sweep_outcomes,
        outcome.clusters,
        outcome.rule_matches,
        outcome.final_blocks,
    )


def _time_engine(lasthop_sets, engine, workers):
    """One validation-free aggregation run under its own registry."""
    with metrics_scope() as registry:
        started = time.perf_counter()
        outcome = run_aggregation(
            lasthop_sets,
            validate=False,
            engine=engine,
            workers=workers,
        )
        elapsed = time.perf_counter() - started
    blocks = len(outcome.identical_blocks)
    return outcome, {
        "engine": outcome.engine,
        "workers": workers,
        "seconds": round(elapsed, 3),
        "graph_seconds": round(
            registry.timer_seconds("phase.aggregate.graph"), 3
        ),
        "mcl_seconds": round(
            registry.timer_seconds("phase.aggregate.mcl"), 3
        ),
        "blocks": blocks,
        "edges": int(registry.gauge_value("aggregation.edges")),
        "components": int(registry.gauge_value("aggregation.components")),
        "clusters": int(registry.gauge_value("aggregation.clusters")),
        "mcl_runs": registry.counter_value("mcl.runs"),
        "parallel_fallback": registry.counter_value(
            "aggregation.parallel_fallback"
        ),
        "blocks_per_second": (
            round(blocks / elapsed, 1) if elapsed else None
        ),
    }, elapsed


def _similarity_split(lasthop_sets):
    """Time just the similarity-graph construction, both ways.

    The end-to-end engine comparison buries this step under the shared
    MCL sweep and the identical-block materialisation, so the kernel
    the columnar engine actually replaces — the inverted-index Python
    loop versus the sparse incidence Gram product — gets its own
    direct measurement.
    """
    blocks = aggregate_identical(lasthop_sets)
    started = time.perf_counter()
    build_similarity_graph(blocks)
    object_seconds = time.perf_counter() - started
    cblocks = group_identical_columnar(lasthop_sets)
    started = time.perf_counter()
    build_similarity_graph_columnar(cblocks)
    columnar_seconds = time.perf_counter() - started
    return {
        "object_seconds": round(object_seconds, 4),
        "columnar_seconds": round(columnar_seconds, 4),
        "speedup": (
            round(object_seconds / columnar_seconds, 1)
            if columnar_seconds
            else None
        ),
    }


def run(profile_name, workers, trace_path, store_path):
    configure_tracing(trace_path)
    workspace = Workspace(
        PROFILES[profile_name], workers=workers, store_path=store_path
    )
    with metrics_scope() as registry:
        with registry.time("phase.campaign_build"):
            lasthop_sets = workspace.campaign.lasthop_sets()

    object_outcome, object_stats, object_elapsed = _time_engine(
        lasthop_sets, "object", 1
    )
    columnar_outcome, columnar_stats, columnar_elapsed = _time_engine(
        lasthop_sets, "columnar", workspace.workers
    )
    if _outputs_key(object_outcome) != _outputs_key(columnar_outcome):
        raise SystemExit(
            "engine mismatch: columnar aggregation outputs differ from "
            "the object path"
        )

    object_graph = object_stats["graph_seconds"]
    columnar_graph = columnar_stats["graph_seconds"]
    document = {
        "benchmark": "aggregation",
        "profile": profile_name,
        "workers": workspace.workers,
        "slash24s": len(lasthop_sets),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "campaign_build_seconds": round(
            registry.timer_seconds("phase.campaign_build"), 3
        ),
        "object": object_stats,
        "columnar": columnar_stats,
        "outputs_identical": True,
        "similarity_graph": _similarity_split(lasthop_sets),
        "graph_build_seconds": columnar_graph,
        "mcl_seconds": columnar_stats["mcl_seconds"],
        "aggregation_seconds": columnar_stats["seconds"],
        "aggregation_blocks_per_second": columnar_stats["blocks_per_second"],
        "graph_speedup": (
            round(object_graph / columnar_graph, 2)
            if columnar_graph
            else None
        ),
        "total_speedup": (
            round(object_elapsed / columnar_elapsed, 2)
            if columnar_elapsed
            else None
        ),
    }

    if trace_path is not None:
        manifest = build_manifest(
            command="aggregation_bench",
            profile=profile_name,
            scenario_seed=workspace.profile.scenario_seed,
            workers=workspace.workers,
            store_path=store_path,
            trace_path=os.path.abspath(trace_path),
            registry=registry,
            extra={"aggregation": document},
        )
        write_run_manifest(manifest_path_for(trace_path), manifest)
    tracer().close()
    configure_tracing(None)
    return document


def check_baseline(document, baseline_path):
    """Compare against a committed snapshot; returns (ok, message)."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    reference = baseline.get("aggregation_blocks_per_second")
    current = document.get("aggregation_blocks_per_second")
    if not reference or not current:
        return True, "baseline: no blocks/sec to compare"
    floor = reference * (1.0 - REGRESSION_TOLERANCE)
    if current < floor:
        return False, (
            f"REGRESSION: aggregation blocks/sec {current:,.0f} is more "
            f"than {REGRESSION_TOLERANCE:.0%} below the baseline "
            f"{reference:,.0f} (floor {floor:,.0f})"
        )
    return True, (
        f"baseline ok: {current:,.0f} blocks/s vs baseline "
        f"{reference:,.0f} (floor {floor:,.0f})"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_aggregation.json")
    parser.add_argument(
        "--profile", default="paper-smoke", choices=sorted(PROFILES)
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--trace", default=None, metavar="PATH")
    parser.add_argument("--store", default=None, metavar="PATH")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed BENCH_aggregation.json snapshot; exit non-zero "
        "if blocks/sec regressed more than "
        f"{REGRESSION_TOLERANCE:.0%}".replace("%", "%%"),
    )
    args = parser.parse_args(argv)

    document = run(args.profile, args.workers, args.trace, args.store)
    rendered = json.dumps(document, indent=2, sort_keys=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(rendered + "\n")
    print(rendered)
    print(
        f"aggregation: {document['slash24s']} /24s -> "
        f"{document['columnar']['blocks']} blocks in "
        f"{document['aggregation_seconds']}s columnar "
        f"(object {document['object']['seconds']}s; "
        f"similarity graph {document['similarity_graph']['speedup']}x, "
        f"total speedup {document['total_speedup']}x) | "
        f"peak RSS {document['peak_rss_mb']} MB"
    )
    if args.baseline is not None:
        ok, message = check_baseline(document, args.baseline)
        print(message)
        if not ok:
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
