"""Benchmark: regenerate the Table-1 sensitivity sweep."""

from _driver import run_experiment_bench


def bench_sensitivity(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "sensitivity")
