"""Benchmark: regenerate Table 3 (top ASes by heterogeneous /24 count)."""

from _driver import run_experiment_bench


def bench_table3(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "table3")
