"""Benchmark: regenerate Section 7.2 (cellular rDNS patterns and negative controls)."""

from _driver import run_experiment_bench


def bench_rdns_cellular(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "rdns-cellular")
