"""CI smoke: the daemon must reproduce the one-shot CLI bit for bit.

Flow:

1. run one campaign via the one-shot CLI (``hobbit-repro campaign``)
   into store A, capturing its result payload;
2. start a real ``hobbit-repro serve`` daemon over store B, submit the
   same spec, follow the NDJSON stream, fetch the final result;
3. assert daemon result == one-shot result (the deterministic payload:
   fingerprint, per-category counts, probes_used, virtual clock) and
   that the two stores hold byte-identical per-/24 measurement
   records under identical fingerprint keys;
4. assert the streamed per-/24 records agree with the stored ones;
5. resubmit the same spec and require a warm answer (zero new probes:
   no worker even starts);
6. SIGTERM the daemon and require exit code 0.

The submitted job's stream journal is left at ``--journal`` for CI to
upload as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py \
        --profile paper-smoke --limit 2000 \
        --out service_smoke.json --journal service_smoke_stream.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.service import ServiceClient, jobs  # noqa: E402
from repro.store import KIND_SLASH24, MeasurementStore  # noqa: E402


def run_cli(args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        ["src"]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args], env=env, **kwargs
    )


def slash24_documents(root):
    with MeasurementStore(root) as store:
        return {
            document["key"]: document
            for document in store.documents()
            if document.get("kind") == KIND_SLASH24
        }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="paper-smoke")
    parser.add_argument("--limit", type=int, default=2000)
    parser.add_argument("--out", default="service_smoke.json")
    parser.add_argument(
        "--journal", default="service_smoke_stream.jsonl",
        help="where to leave the daemon job's stream journal",
    )
    args = parser.parse_args()

    spec_args = [
        "--profile", args.profile, "--limit", str(args.limit),
        "--no-confidence",
    ]
    spec = {
        "kind": "campaign", "profile": args.profile,
        "limit": args.limit, "confidence": False,
    }

    workdir = tempfile.mkdtemp(prefix="service-smoke-")
    oneshot_store = os.path.join(workdir, "oneshot-store")
    daemon_store = os.path.join(workdir, "daemon-store")
    payload_path = os.path.join(workdir, "oneshot.json")
    timings = {}

    started = time.perf_counter()
    print(f"[1/6] one-shot CLI campaign into {oneshot_store}")
    run_cli(
        ["campaign", *spec_args, "--store", oneshot_store,
         "--json", payload_path],
        check=True,
    )
    with open(payload_path, encoding="utf-8") as handle:
        oneshot = json.load(handle)
    timings["oneshot_seconds"] = round(time.perf_counter() - started, 2)

    print(f"[2/6] daemon over {daemon_store}")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store", daemon_store, "--port", "0"],
        env={
            **os.environ,
            "PYTHONPATH": os.pathsep.join(
                ["src"] + [p for p in
                           os.environ.get("PYTHONPATH", "").split(
                               os.pathsep) if p]
            ),
        },
        stdin=subprocess.DEVNULL,
    )
    try:
        info_path = jobs.daemon_info_path(daemon_store)
        deadline = time.monotonic() + 120
        while not os.path.exists(info_path):
            assert proc.poll() is None, "daemon died during startup"
            assert time.monotonic() < deadline, "daemon never advertised"
            time.sleep(0.1)
        with open(info_path, encoding="utf-8") as handle:
            info = json.load(handle)
        client = ServiceClient(port=info["port"], timeout=600)

        started = time.perf_counter()
        submitted = client.submit(spec)
        assert submitted["warm"] is False, "daemon store must start cold"
        job_id = submitted["id"]
        print(f"[3/6] streaming job {job_id}")
        streamed = list(client.stream(job_id))
        timings["daemon_seconds"] = round(
            time.perf_counter() - started, 2
        )
        assert streamed[-1]["kind"] == "stream_end", streamed[-1]
        assert streamed[-1]["state"] == "done", streamed[-1]
        daemon_payload = client.result(job_id)["result"]["payload"]

        print("[4/6] comparing daemon result to the one-shot run")
        det_daemon = jobs.deterministic_payload(daemon_payload)
        det_oneshot = jobs.deterministic_payload(oneshot)
        assert det_daemon == det_oneshot, (
            "daemon result diverged from one-shot CLI:\n"
            f"  daemon:   {json.dumps(det_daemon, sort_keys=True)}\n"
            f"  one-shot: {json.dumps(det_oneshot, sort_keys=True)}"
        )
        oneshot_docs = slash24_documents(oneshot_store)
        daemon_docs = slash24_documents(daemon_store)
        assert daemon_docs == oneshot_docs, (
            f"store records diverged: {len(daemon_docs)} daemon vs "
            f"{len(oneshot_docs)} one-shot"
        )
        assert len(daemon_docs) == args.limit

        slash24_events = [
            record for record in streamed
            if record.get("name") == "job.slash24"
        ]
        assert len(slash24_events) == args.limit, (
            f"streamed {len(slash24_events)} per-/24 records, "
            f"expected {args.limit}"
        )
        streamed_probes = sum(r["probes"] for r in slash24_events)
        assert streamed_probes == daemon_payload["probes_used"], (
            f"streamed probe total {streamed_probes} != final "
            f"{daemon_payload['probes_used']}"
        )

        print("[5/6] warm repeat submission")
        again = client.submit(spec)
        assert again["warm"] is True and again["state"] == "done", again
        assert client.status(again["id"])["attempts"] == 0
        warm_counter = client.metrics()["metrics"]["counters"].get(
            "service.jobs.warm", 0
        )
        assert warm_counter == 1, warm_counter

        shutil.copyfile(
            jobs.stream_path(daemon_store, job_id), args.journal
        )

        print("[6/6] SIGTERM → graceful exit 0")
        proc.send_signal(signal.SIGTERM)
        returncode = proc.wait(timeout=60)
        assert returncode == 0, f"daemon exited {returncode}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    document = {
        "profile": args.profile,
        "limit": args.limit,
        "campaign_fingerprint": oneshot["campaign_fingerprint"],
        "probes_used": oneshot["probes_used"],
        "clock_seconds": oneshot["clock_seconds"],
        "slash24_records": len(daemon_docs),
        "streamed_records": len(streamed),
        "warm_repeat": True,
        "timings": timings,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    shutil.rmtree(workdir, ignore_errors=True)
    print(f"service smoke OK: {json.dumps(timings)}; wrote {args.out} "
          f"and {args.journal}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
