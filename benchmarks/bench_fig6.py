"""Benchmark: regenerate Figure 6 (first-RTT-minus-rest cellular detection)."""

from _driver import run_experiment_bench


def bench_fig6(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig6")
