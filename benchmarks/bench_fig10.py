"""Benchmark: regenerate Figure 10 (block sizes before/after MCL clustering)."""

from _driver import run_experiment_bench


def bench_fig10(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig10")
