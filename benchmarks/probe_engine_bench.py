"""Probe-engine microbenchmark: compiled+batched vs the reference engine.

Measures µs/probe on the two probe-path workloads the campaign hot loop
is made of — full-/24 echo sweeps and MDA-style per-destination flow
fan-out — once under ``REPRO_REFERENCE_ENGINE=1`` (the serial trie-walk
baseline) and once under the compiled forwarding plane with batched
probing. Emits a machine-readable summary (``BENCH_probe_engine.json``
by default) with the µs/probe figures, the speedups, and the forwarder
cache hit rate; CI runs this as the probe-engine bench smoke.

Both engines send bit-identical probe sequences (asserted via the final
probe counter), so the comparison is pure engine overhead.

Usage::

    PYTHONPATH=src python benchmarks/probe_engine_bench.py \
        [--out BENCH_probe_engine.json] [--slash24s 60] \
        [--mda-dsts 40] [--flows 64] [--seed 7]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.netsim.routing import REFERENCE_ENGINE_ENV  # noqa: E402


def _build_internet(reference, seed):
    """A fresh tiny-scenario internet pinned to one engine."""
    from repro.netsim import SimulatedInternet, tiny_scenario

    if reference:
        os.environ[REFERENCE_ENGINE_ENV] = "1"
    else:
        os.environ.pop(REFERENCE_ENGINE_ENV, None)
    try:
        return SimulatedInternet.from_config(tiny_scenario(seed=seed))
    finally:
        os.environ.pop(REFERENCE_ENGINE_ENV, None)


def _run_sweep(internet, slash24_count):
    """Echo-sweep ``slash24_count`` /24s (256 addresses each, ttl=64)."""
    slash24s = internet.universe_slash24s[:slash24_count]
    started = time.perf_counter()
    for slash24 in slash24s:
        internet.send_probe_batch(list(slash24), 64)
    return time.perf_counter() - started


def _run_mda_fanout(internet, dst_count, flows):
    """Fan ``flows`` flow ids out to each of ``dst_count`` destinations
    across a TTL ladder (the per-hop MDA shape: the same flows re-probe
    every hop, so path resolution recurs and the route cache pays)."""
    dsts = [s24.first + 1 for s24 in internet.universe_slash24s[:dst_count]]
    flow_ids = list(range(flows))
    started = time.perf_counter()
    for dst in dsts:
        for ttl in range(1, 8):
            internet.send_probe_batch([dst] * flows, ttl, flow_ids)
    return time.perf_counter() - started


def _measure(workload, reference, seed, **kwargs):
    internet = _build_internet(reference, seed)
    elapsed = workload(internet, **kwargs)
    return {
        "elapsed_seconds": elapsed,
        "probes": internet.probe_count,
        "us_per_probe": 1e6 * elapsed / internet.probe_count,
        "stats": internet.stats(),
    }


def run(slash24s, mda_dsts, flows, seed):
    results = {}
    for name, workload, kwargs in (
        ("sweep", _run_sweep, {"slash24_count": slash24s}),
        ("mda_fanout", _run_mda_fanout,
         {"dst_count": mda_dsts, "flows": flows}),
    ):
        reference = _measure(workload, True, seed, **kwargs)
        compiled = _measure(workload, False, seed, **kwargs)
        # Same workload on the same scenario: the engines must have sent
        # the exact same number of probes or the timing is meaningless.
        assert reference["probes"] == compiled["probes"], name
        results[name] = {
            "probes": compiled["probes"],
            "reference_us_per_probe": round(
                reference["us_per_probe"], 3
            ),
            "compiled_us_per_probe": round(compiled["us_per_probe"], 3),
            "speedup": round(
                reference["us_per_probe"] / compiled["us_per_probe"], 3
            ),
            "forwarder_cache_hit_rate": round(
                compiled["stats"]["forwarder_cache_hit_rate"], 4
            ),
            "batched_probes": compiled["stats"]["batched_probes"],
        }
    return {
        "benchmark": "probe_engine",
        "scenario": "tiny",
        "seed": seed,
        "workloads": results,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_probe_engine.json")
    parser.add_argument("--slash24s", type=int, default=60)
    parser.add_argument("--mda-dsts", type=int, default=40)
    parser.add_argument("--flows", type=int, default=64)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    document = run(args.slash24s, args.mda_dsts, args.flows, args.seed)
    rendered = json.dumps(document, indent=2, sort_keys=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(rendered + "\n")
    print(rendered)
    for name, workload in document["workloads"].items():
        print(
            f"{name}: {workload['reference_us_per_probe']} -> "
            f"{workload['compiled_us_per_probe']} us/probe "
            f"({workload['speedup']}x, cache hit rate "
            f"{workload['forwarder_cache_hit_rate']})"
        )


if __name__ == "__main__":
    main()
