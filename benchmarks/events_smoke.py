#!/usr/bin/env python
"""Events smoke: a dynamic internet must not cost campaign determinism.

Runs the measurement campaign twice on the same profile with the
dynamic-event engine active (renumbering waves, routing shifts,
regional outages, ICMP rate-limit storms) — once serial, once with
``--workers N`` — and fails unless:

* both campaigns complete over the same /24 selection,
* the parallel run is bit-identical to the serial baseline (result
  rows, end-of-campaign virtual clock, probe count),
* the stressors actually fired (``events.*`` counters are non-zero —
  a schedule that never bites makes this gate vacuous), and
* the columnar fast path never fell back silently: any
  ``campaign.fastpath_fallback`` count fails the smoke, because events
  are supposed to be handled natively on the batched path.

CI runs this on the ``paper-smoke`` profile; locally ``--profile
small`` finishes in seconds:

    PYTHONPATH=src python benchmarks/events_smoke.py --profile small
"""

import argparse
import hashlib
import json
import os
import sys


def result_digest(result) -> str:
    # Canonical row form rather than raw memory (see
    # faulty_worker_smoke.result_digest for why repr()/tobytes() of the
    # concrete shapes are not stable identities).
    digest = hashlib.sha256()
    for m in result:
        row = (
            str(m.slash24),
            m.category.name,
            None if m.stop_reason is None else m.stop_reason.name,
            int(m.destinations_probed),
            int(m.hosts_responsive),
            int(m.probes_used),
            sorted(
                (int(dst), sorted(int(hop) for hop in hops))
                for dst, hops in m.observations.items()
            ),
        )
        digest.update(repr(row).encode())
    return digest.hexdigest()


def run_once(profile_name, intensity, workers, registry):
    from repro.core import TerminationPolicy, run_campaign
    from repro.experiments import PROFILES, Workspace

    with Workspace(
        PROFILES[profile_name], workers=1, store_path=None,
        event_intensity=intensity,
    ) as ws:
        policy = TerminationPolicy(confidence_table=ws.confidence_table)
        result = run_campaign(
            ws.internet,
            policy,
            snapshot=ws.snapshot,
            seed=ws.internet.config.seed ^ 0xE7E,
            max_destinations_per_slash24=ws.profile.campaign_max_destinations,
            workers=workers,
            result_format=ws.profile.campaign_result_format,
            metrics=registry,
        )
        counters = (
            dict(ws.internet.events.counters)
            if ws.internet.events is not None
            else {}
        )
        return {
            "digest": result_digest(result),
            "clock": ws.internet.clock_seconds,
            "probes": ws.internet.probe_count,
            "slash24s": len(result.measurements),
            "events": counters,
        }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="paper-smoke")
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument(
        "--intensity", type=float, default=0.6,
        help="dynamic-event intensity in [0, 1] (see EventConfig"
             ".at_intensity)",
    )
    parser.add_argument("--out", default=None, help="write JSON summary here")
    args = parser.parse_args(argv)

    from repro.obs.metrics import MetricsRegistry

    print(
        f"[1/2] serial baseline on {args.profile!r} at intensity "
        f"{args.intensity} ...",
        flush=True,
    )
    serial_registry = MetricsRegistry()
    serial = run_once(args.profile, args.intensity, 1, serial_registry)
    print(
        f"      {serial['slash24s']} /24s, clock={serial['clock']:.3f}, "
        f"probes={serial['probes']}, events={serial['events']}",
        flush=True,
    )

    print(f"[2/2] same campaign with workers={args.workers} ...", flush=True)
    parallel_registry = MetricsRegistry()
    parallel = run_once(
        args.profile, args.intensity, args.workers, parallel_registry
    )
    print(
        f"      {parallel['slash24s']} /24s, clock={parallel['clock']:.3f}, "
        f"probes={parallel['probes']}, events={parallel['events']}",
        flush=True,
    )

    failures = []
    if serial["slash24s"] == 0:
        failures.append("serial campaign measured zero /24s")
    if sum(serial["events"].values()) == 0:
        failures.append(
            "no events fired — the schedule never bit, gate is vacuous"
        )
    for label in ("digest", "clock", "probes", "slash24s"):
        if serial[label] != parallel[label]:
            failures.append(
                f"{label} diverged: serial={serial[label]} "
                f"parallel={parallel[label]}"
            )
    for mode, registry in (
        ("serial", serial_registry), ("parallel", parallel_registry)
    ):
        fallbacks = registry.counter_value("campaign.fastpath_fallback")
        if fallbacks:
            failures.append(
                f"{mode} run fell back off the fast path {fallbacks} "
                "times — events must be handled natively"
            )

    summary = {
        "profile": args.profile,
        "intensity": args.intensity,
        "workers": args.workers,
        "serial": serial,
        "parallel": parallel,
        "failures": failures,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {args.out}", flush=True)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "OK: events-enabled campaign is bit-identical serial vs "
        f"workers={args.workers}, with every stressor observed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
