"""Performance benchmarks for the hot components (not tied to a paper
artifact): probe dispatch, last-hop identification, the hierarchy test,
the ZMap fast scan, MCL, and the campaign executor serial vs sharded
(``REPRO_BENCH_WORKERS`` workers, default 4)."""

import os
import random

from repro.aggregation import build_similarity_graph, mcl
from repro.core import TerminationPolicy, measure_slash24, run_campaign
from repro.core.grouping import group_by_lasthop
from repro.core.hierarchy import groups_hierarchical
from repro.probing import (
    Prober,
    enumerate_hops,
    enumerate_paths,
    identify_lasthops,
    scan,
)
from repro.probing.traceroute import paris_traceroute


def bench_probe_dispatch(benchmark, workspace):
    internet = workspace.internet
    snapshot = workspace.snapshot
    slash24 = snapshot.eligible_slash24s()[0]
    dst = snapshot.active_in(slash24)[0]

    def send_hundred():
        for flow in range(100):
            internet.send_probe(dst, 64, flow)

    benchmark(send_hundred)


def bench_probe_batch_sweep(benchmark, workspace):
    """The vectorised hot path: one /24 swept through
    ``send_probe_batch`` (compare with ``bench_probe_dispatch`` for the
    per-probe serial cost)."""
    internet = workspace.internet
    slash24 = workspace.snapshot.eligible_slash24s()[0]
    addrs = list(slash24)
    benchmark(internet.send_probe_batch, addrs, 64)


def bench_probe_batch_mda_fanout(benchmark, workspace):
    """MDA-style fan-out: 64 flows to one destination at a router TTL,
    batched."""
    internet = workspace.internet
    snapshot = workspace.snapshot
    slash24 = snapshot.eligible_slash24s()[0]
    dst = snapshot.active_in(slash24)[0]
    flows = list(range(64))
    benchmark(internet.send_probe_batch, [dst] * 64, 6, flows)


def bench_paris_traceroute(benchmark, workspace):
    internet = workspace.internet
    snapshot = workspace.snapshot
    slash24 = snapshot.eligible_slash24s()[1]
    dst = snapshot.active_in(slash24)[0]
    prober = Prober(internet)
    benchmark(paris_traceroute, prober, dst, 3)


def bench_identify_lasthops(benchmark, workspace):
    internet = workspace.internet
    snapshot = workspace.snapshot
    slash24 = snapshot.eligible_slash24s()[2]
    dst = snapshot.active_in(slash24)[0]
    prober = Prober(internet)
    benchmark(identify_lasthops, prober, dst)


def bench_mda_per_hop(benchmark, workspace):
    internet = workspace.internet
    snapshot = workspace.snapshot
    slash24 = snapshot.eligible_slash24s()[4]
    dst = snapshot.active_in(slash24)[0]
    prober = Prober(internet)
    benchmark(enumerate_hops, prober, dst)


def bench_mda_path_level(benchmark, workspace):
    internet = workspace.internet
    snapshot = workspace.snapshot
    slash24 = snapshot.eligible_slash24s()[4]
    dst = snapshot.active_in(slash24)[0]
    prober = Prober(internet)
    benchmark(enumerate_paths, prober, dst)


def bench_measure_one_slash24(benchmark, workspace):
    internet = workspace.internet
    snapshot = workspace.snapshot
    slash24 = snapshot.eligible_slash24s()[3]
    prober = Prober(internet)

    def measure():
        return measure_slash24(
            prober,
            slash24,
            snapshot.active_in(slash24),
            TerminationPolicy(confidence_table=workspace.confidence_table),
            random.Random(1),
            max_destinations=48,
        )

    benchmark(measure)


#: /24s measured by the campaign benches (enough to amortise pool
#: start-up; override with REPRO_BENCH_CAMPAIGN_SLASH24S).
CAMPAIGN_BENCH_SLASH24S = int(
    os.environ.get("REPRO_BENCH_CAMPAIGN_SLASH24S", "400")
)


def _campaign_bench_kwargs(workspace):
    snapshot = workspace.snapshot
    return dict(
        policy=TerminationPolicy(
            confidence_table=workspace.confidence_table
        ),
        slash24s=snapshot.eligible_slash24s()[:CAMPAIGN_BENCH_SLASH24S],
        snapshot=snapshot,
        seed=workspace.internet.config.seed ^ 0xBE4C,
        max_destinations_per_slash24=(
            workspace.profile.campaign_max_destinations
        ),
    )


def bench_campaign_serial(benchmark, workspace):
    kwargs = _campaign_bench_kwargs(workspace)
    result = benchmark.pedantic(
        run_campaign,
        args=(workspace.internet,),
        kwargs=dict(kwargs, workers=1),
        rounds=1,
        iterations=1,
    )
    assert result.total == len(kwargs["slash24s"])


def bench_campaign_parallel(benchmark, workspace):
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
    kwargs = _campaign_bench_kwargs(workspace)
    result = benchmark.pedantic(
        run_campaign,
        args=(workspace.internet,),
        kwargs=dict(kwargs, workers=workers),
        rounds=1,
        iterations=1,
    )
    assert result.total == len(kwargs["slash24s"])


def bench_campaign_store_cold(benchmark, workspace, tmp_path):
    from repro.store import MeasurementStore

    kwargs = _campaign_bench_kwargs(workspace)
    with MeasurementStore(tmp_path / "cold-store") as store:
        result = benchmark.pedantic(
            run_campaign,
            args=(workspace.internet,),
            kwargs=dict(kwargs, workers=1, store=store),
            rounds=1,
            iterations=1,
        )
    assert result.total == len(kwargs["slash24s"])


def bench_campaign_store_warm(benchmark, workspace, tmp_path):
    from repro.store import MeasurementStore

    kwargs = _campaign_bench_kwargs(workspace)
    # REPRO_BENCH_STORE points at a persistent directory (cached across
    # CI runs); the populate pass is a no-op replay when already warm.
    root = os.environ.get("REPRO_BENCH_STORE") or str(tmp_path / "warm-store")
    with MeasurementStore(root) as store:
        run_campaign(workspace.internet, store=store, workers=1, **kwargs)
        result = benchmark.pedantic(
            run_campaign,
            args=(workspace.internet,),
            kwargs=dict(kwargs, workers=1, store=store),
            rounds=1,
            iterations=1,
        )
    assert result.total == len(kwargs["slash24s"])


def bench_zmap_fast_scan(benchmark, workspace):
    internet = workspace.internet
    slash24s = internet.universe_slash24s[:200]
    benchmark(scan, internet, None, slash24s)


def bench_hierarchy_test(benchmark, workspace):
    rng = random.Random(7)
    observations = {
        0x0A000000 + i: frozenset({rng.randrange(8)}) for i in range(256)
    }

    def run():
        return groups_hierarchical(group_by_lasthop(observations))

    benchmark(run)


def bench_mcl_on_measured_graph(benchmark, workspace):
    blocks = workspace.aggregation.identical_blocks
    graph = build_similarity_graph(blocks)
    matrix = graph.to_sparse()
    benchmark(mcl, matrix, workspace.aggregation.inflation)
