"""Benchmark: regenerate Figure 4 (the <cardinality, probed> confidence grid)."""

from _driver import run_experiment_bench


def bench_fig4(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig4")
