"""Benchmark fixtures.

The workspace (scenario, snapshot, campaign, aggregation, path dataset)
is built once per session and *pre-warmed*, so each bench times the
regeneration of its table/figure from the shared measurement data — the
same structure as the paper's analysis pipeline, where one measurement
campaign feeds every table.

Profile selection: ``REPRO_PROFILE`` (default ``small``). Use
``REPRO_PROFILE=tiny pytest benchmarks/ --benchmark-only`` for a quick
pass.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_workspace


@pytest.fixture(scope="session")
def workspace():
    ws = get_workspace()
    # Pre-warm the heavy shared artifacts so benches time only their
    # own analysis (the first property access builds each artifact).
    ws.snapshot
    ws.confidence_table
    ws.campaign
    ws.aggregation
    ws.path_dataset
    ws.strict_het_analyses
    return ws
