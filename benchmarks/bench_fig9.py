"""Benchmark: regenerate Figure 9 (the similarity rule vs reprobing outcomes)."""

from _driver import run_experiment_bench


def bench_fig9(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig9")
