"""Benchmark: regenerate Ablation (termination-rule probing cost vs accuracy)."""

from _driver import run_experiment_bench


def bench_ablation_termination(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "ablation-termination")
