"""Benchmark: regenerate Section 2 preliminary studies (straw-man route comparison and the /31 per-destination estimates)."""

from _driver import run_experiment_bench


def bench_prelim(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "prelim")
