"""Benchmark: regenerate Table 2 (sub-block compositions of heterogeneous /24s)."""

from _driver import run_experiment_bench


def bench_table2(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "table2")
