"""Benchmark: regenerate the ablation-vantage extension experiment."""

from _driver import run_experiment_bench


def bench_ablation_vantage(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "ablation-vantage")
