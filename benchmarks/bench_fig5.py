"""Benchmark: regenerate Figure 5 (identical-set aggregated block sizes)."""

from _driver import run_experiment_bench


def bench_fig5(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig5")
