"""Benchmark: regenerate Ablation (MCL preprocessing variants)."""

from _driver import run_experiment_bench


def bench_ablation_mcl(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "ablation-mcl")
