"""Benchmark: regenerate Figure 12 (stratified vs random sampling of rDNS patterns)."""

from _driver import run_experiment_bench


def bench_fig12(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "fig12")
