"""Benchmark: regenerate the dhcp-search extension experiment."""

from _driver import run_experiment_bench


def bench_dhcp_search(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "dhcp-search")
