"""Benchmark: regenerate Section 3.1 metric comparison (Hobbit coverage on entire traceroutes vs last-hop routers)."""

from _driver import run_experiment_bench


def bench_lasthop_vs_path(benchmark, workspace):
    run_experiment_bench(benchmark, workspace, "lasthop-vs-path")
