"""Shared bench driver (imported by every bench module)."""

from __future__ import annotations


def run_experiment_bench(benchmark, workspace, experiment_id,
                         rounds: int = 1):
    """Regenerate one paper artifact under the timer and print it."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, workspace),
        rounds=rounds,
        iterations=1,
    )
    assert result.experiment_id == experiment_id
    print()
    print(result.render())
    return result
