#!/usr/bin/env python
"""Quickstart: the whole Hobbit pipeline in ~60 lines.

Builds a small synthetic Internet, takes a ZMap-style activity
snapshot, measures each eligible /24 with Hobbit (last-hop
identification + hierarchy test + termination rules), and aggregates
the homogeneous /24s into larger blocks.

Run:  python examples/quickstart.py
"""

from repro.aggregation import run_aggregation, top_blocks
from repro.core import TerminationPolicy, run_campaign
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.probing import scan
from repro.util import render_table


def main() -> None:
    # 1. A synthetic Internet with known ground truth.
    internet = SimulatedInternet.from_config(tiny_scenario(seed=42))
    print(f"built: {internet.stats()['routers']:.0f} routers, "
          f"{len(internet.universe_slash24s)} /24s\n")

    # 2. ZMap snapshot: which addresses answer ICMP echo?
    snapshot = scan(internet)
    eligible = snapshot.eligible_slash24s()
    print(f"snapshot: {snapshot.total_active} active addresses; "
          f"{len(eligible)} /24s meet the selection criteria\n")

    # 3. Hobbit measurement campaign over the first 60 eligible /24s.
    campaign = run_campaign(
        internet,
        TerminationPolicy(),
        slash24s=eligible[:60],
        snapshot=snapshot,
        seed=1,
        max_destinations_per_slash24=48,
    )
    rows = [
        [category.value, count]
        for category, count in campaign.category_counts().items()
    ]
    print(render_table(["category", "# /24s"], rows,
                       title="Hobbit classification"))
    print(f"\nprobes used: {campaign.probes_used} "
          f"({campaign.probes_used // campaign.total} per /24)\n")

    # 4. Aggregate homogeneous /24s into larger blocks.
    outcome = run_aggregation(
        campaign.lasthop_sets(),
        internet=internet,
        snapshot=snapshot,
        max_pairs_per_cluster=16,
        seed=1,
    )
    print(f"{len(campaign.lasthop_sets())} homogeneous /24s → "
          f"{len(outcome.identical_blocks)} identical-set blocks → "
          f"{len(outcome.final_blocks)} after MCL + reprobing\n")

    rows = []
    for block in top_blocks(outcome.final_blocks, 5):
        record = internet.geodb.lookup(block.slash24s[0].network)
        rows.append([
            block.size,
            record.organization if record else "?",
            str(block.slash24s[0]),
        ])
    print(render_table(["size (/24s)", "owner", "first /24"], rows,
                       title="largest homogeneous blocks"))

    # 5. Score against ground truth (impossible on the real Internet).
    truth = internet.ground_truth
    judged = correct = 0
    for slash24, m in campaign.measurements.items():
        if m.category.analyzable:
            judged += 1
            correct += m.is_homogeneous == truth.is_homogeneous(slash24)
    print(f"\naccuracy vs ground truth: {correct}/{judged} "
          f"({100 * correct / judged:.0f}%)")


if __name__ == "__main__":
    main()
