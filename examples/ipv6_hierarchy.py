#!/usr/bin/env python
"""Hobbit's decision core on IPv6 (the paper's stated future work).

"As future work, we intend to apply Hobbit to IPv6 networks." The
hierarchy test is address-family agnostic — it only needs addresses as
ordered integers — so the IPv6 groundwork in ``repro.net.v6`` plugs
straight in. This example runs the verdict logic over synthetic IPv6
last-hop observations for /64 measurement units:

* a /64 behind per-destination load balancing (interleaved last hops →
  non-hierarchical → homogeneous),
* a /64 split into two /65 customer assignments (disjoint, aligned →
  hierarchical → candidate heterogeneity).

Run:  python examples/ipv6_hierarchy.py
"""

from repro.net.v6 import (
    Range6,
    format_v6,
    group_ranges_v6,
    measurement_unit_of,
    parse_v6,
    v6_groups_hierarchical,
)


def show(name: str, observations) -> None:
    unit = measurement_unit_of(next(iter(observations)))
    hierarchical = v6_groups_hierarchical(observations)
    verdict = (
        "hierarchical (candidate heterogeneity)"
        if hierarchical
        else "non-hierarchical (homogeneous: load balancing)"
    )
    print(f"{name}: unit {unit}")
    groups = {}
    for addr, lasthops in observations.items():
        for lasthop in lasthops:
            groups.setdefault(lasthop, []).append(addr)
    for lasthop, members in sorted(groups.items()):
        lo, hi = min(members), max(members)
        print(f"  router {lasthop}: {len(members)} addresses, range "
              f"[{format_v6(lo)} .. {format_v6(hi)}]")
    print(f"  verdict: {verdict}\n")


def main() -> None:
    base = parse_v6("2001:db8:42:7::")

    # Case 1: per-destination ECMP interleaves two last-hop routers
    # across the /64's addresses.
    balanced = {
        base + offset: frozenset({1 if offset % 2 else 2})
        for offset in range(1, 13)
    }
    show("load-balanced /64", balanced)

    # Case 2: the /64 is split into two /65 assignments, each behind its
    # own router: the groups are disjoint and aligned.
    half = 1 << 63
    split = {}
    for offset in (1, 9, 200, 4096):
        split[base + offset] = frozenset({10})
    for offset in (1, 77, 300, 9000):
        split[base + half + offset] = frozenset({11})
    show("split /64 (two /65 customers)", split)

    # The same Range6 objects feed the generic hierarchy algorithm the
    # IPv4 pipeline uses — nothing else changes for IPv6.
    ranges = group_ranges_v6(
        {"a": [base + 1, base + 40], "b": [base + 20, base + 90]}
    )
    print("range objects interoperate with repro.core.hierarchy:",
          ", ".join(str(r) for r in ranges))


if __name__ == "__main__":
    main()
