#!/usr/bin/env python
"""Identifying cellular address pools (Sections 5.2 and 7.2).

Large homogeneous blocks owned by broadband carriers are often cellular
pools sitting behind a few ingress points. Two signals confirm it:

1. RTT behaviour: the *first* ping to a cellular device pays the radio
   promotion delay, so ``first RTT − max(rest RTTs)`` is strongly
   positive (Figure 6).
2. Reverse DNS: mining the block's names yields an operator pattern
   (e.g. ``m[0-9].+\\.cust\\.tele2``) that matches no router or wired
   host — usable to identify cellular addresses network-wide.

Run:  python examples/cellular_identification.py
"""

from repro.aggregation import AggregatedBlock
from repro.analysis import (
    check_negative_controls,
    mine_block_patterns,
    study_block,
)
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.netsim.rdns import router_rdns_name
from repro.probing import scan
from repro.util import render_table


def blocks_from_ground_truth(internet, min_size=4):
    """True homogeneous aggregates, as Hobbit would identify them."""
    blocks = []
    for index, true_block in enumerate(internet.ground_truth.true_blocks()):
        if true_block.size >= min_size:
            blocks.append(
                AggregatedBlock(
                    block_id=index,
                    lasthop_set=true_block.lasthop_router_ids,
                    slash24s=true_block.slash24s,
                )
            )
    return sorted(blocks, key=lambda b: -b.size)


def main() -> None:
    internet = SimulatedInternet.from_config(tiny_scenario(seed=5))
    snapshot = scan(internet)

    rows = []
    patterns = []
    for block in blocks_from_ground_truth(internet)[:6]:
        record = internet.geodb.lookup(block.slash24s[0].network)
        label = record.organization if record else "?"
        study = study_block(
            internet, block, snapshot, label=label,
            slash24_sample=6, max_addresses_per_slash24=5, ping_count=8,
        )
        verdict = "cellular" if study.looks_cellular else "wired"
        rows.append([
            label, block.size, study.addresses_probed,
            f"{study.fraction_above(0.5) * 100:.0f}%", verdict,
        ])
        if study.looks_cellular:
            mined = mine_block_patterns(internet, block, snapshot, label)
            dominant = mined.dominant()
            if dominant:
                patterns.append((label, dominant, mined.coverage(dominant)))
    print(render_table(
        ["block owner", "size", "addrs", "diff > 0.5s", "verdict"],
        rows,
        title="RTT-based cellular detection (Figure 6)",
    ))

    if patterns:
        print("\nmined rDNS patterns (Section 7.2):")
        router_names = [router_rdns_name(r.label) for r in internet.topology]
        for label, pattern, coverage in patterns:
            control = check_negative_controls(pattern, router_names, [])
            status = "clean" if control.clean else "FALSE MATCHES"
            print(f"  {label}: {pattern}")
            print(f"    coverage {coverage * 100:.0f}%, "
                  f"negative controls: {status} "
                  f"({control.router_names} router names checked)")


if __name__ == "__main__":
    main()
