#!/usr/bin/env python
"""Who splits /24s, and why? (Sections 4.2 and Table 4.)

Hobbit's "different but hierarchical" /24s are only *candidates* for
heterogeneity. This example applies the strict disjoint+aligned
criteria to isolate the very-likely-heterogeneous ones, groups them by
AS, and then verifies against the (KRNIC-style) WHOIS registry that
they really are split into sub-/24 customer assignments — with
registration dates after 2015, consistent with IPv4 depletion.

Run:  python examples/whois_investigation.py
"""

from repro.analysis import heterogeneous_by_asn, whois_examples
from repro.core import (
    Category,
    ExhaustivePolicy,
    analyze_sub_blocks,
    format_composition,
    run_campaign,
)
from repro.netsim import SimulatedInternet, render_krnic_response, tiny_scenario
from repro.probing import scan
from repro.util import render_table


def main() -> None:
    internet = SimulatedInternet.from_config(tiny_scenario(seed=13))
    snapshot = scan(internet)

    # Probe exhaustively so sub-block structure is fully visible.
    campaign = run_campaign(
        internet, ExhaustivePolicy(),
        snapshot=snapshot, seed=3, max_destinations_per_slash24=64,
    )
    hierarchical = campaign.by_category(Category.HIERARCHICAL)
    print(f"{len(hierarchical)} /24s are 'different but hierarchical'\n")

    strict = []
    for measurement in hierarchical:
        analysis = analyze_sub_blocks(measurement.observations)
        if analysis.strictly_heterogeneous:
            strict.append((measurement.slash24, analysis))
    print(f"{len(strict)} meet the strict disjoint+aligned criteria:")
    for slash24, analysis in strict:
        print(f"  {slash24}: {format_composition(analysis.composition)}")

    slash24s = [slash24 for slash24, _a in strict]
    rows = [
        [row.rank, row.heterogeneous_slash24s, f"AS{row.asn}",
         row.organization, row.country]
        for row in heterogeneous_by_asn(slash24s, internet.geodb, top=5)
    ]
    print()
    print(render_table(
        ["rank", "# het /24s", "ASN", "organization", "country"],
        rows, title="Table 3: who splits /24s",
    ))

    print("\nWHOIS verification:")
    for slash24 in slash24s:
        verdict = (
            "registered as split sub-allocations"
            if internet.whois.is_split(slash24)
            else "NOT split in the registry (measurement artefact)"
        )
        print(f"  {slash24}: {verdict}")

    examples = whois_examples(internet.whois, slash24s, limit=1)
    if not examples:
        # Show the Table 4 shape on a ground-truth split /24 instead.
        examples = whois_examples(
            internet.whois, internet.ground_truth.split_slash24s(), limit=1
        )
    for slash24, records in examples:
        print(f"\nregistry records for {slash24} (Table 4):")
        print(render_krnic_response(records))
        recent = sum(r.registration_date >= "20150101" for r in records)
        print(f"\n{recent}/{len(records)} sub-allocations registered "
              "in 2015 or later")


if __name__ == "__main__":
    main()
