#!/usr/bin/env python
"""Re-finding DHCP-renumbered hosts with Hobbit blocks.

The paper's introduction: "homogeneous blocks can provide guidance in
searching for new addresses of the hosts that changed their addresses
by DHCP." Hosts in the simulator renumber within their pod every lease
period; a tracked host found once at an address will be somewhere else
a lease later. Searching its Hobbit block beats searching the world.

Run:  python examples/dhcp_reidentification.py
"""

import random

from repro.aggregation import AggregatedBlock
from repro.analysis import (
    block_of_address,
    compare_search_strategies,
    fingerprint,
    search_for_host,
)
from repro.analysis.dhcp_search import block_candidates
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.netsim.dhcp import EPOCHS_PER_LEASE, renumbered_address
from repro.probing import scan
from repro.util import render_table


def hobbit_blocks(internet):
    """Ground-truth aggregates standing in for measured Hobbit blocks."""
    return [
        AggregatedBlock(
            block_id=index,
            lasthop_set=tb.lasthop_router_ids,
            slash24s=tb.slash24s,
        )
        for index, tb in enumerate(internet.ground_truth.true_blocks())
    ]


def main() -> None:
    internet = SimulatedInternet.from_config(tiny_scenario(seed=23))
    snapshot = scan(internet)
    blocks = hobbit_blocks(internet)

    # Track one host through a lease change, step by step.
    block = max(blocks, key=lambda b: b.size)
    old_address = snapshot.active_in(block.slash24s[0])[0]
    old_epoch, new_epoch = 0, EPOCHS_PER_LEASE
    pod = internet.allocations.pod_of(old_address)
    new_address = renumbered_address(pod, old_address, old_epoch, new_epoch)
    print(f"tracked host held {old_address:#010x} at epoch {old_epoch}; "
          f"after the lease change it holds {new_address:#010x}")
    print(f"fingerprints match: "
          f"{fingerprint(internet, old_address, old_epoch) == fingerprint(internet, new_address, new_epoch)}\n")

    outcome = search_for_host(
        internet, old_address, old_epoch, new_epoch,
        block_candidates(block, random.Random(1)), "hobbit-block",
    )
    print(f"block search found it after {outcome.candidates_probed} "
          f"probes (block spans {block.size * 256} addresses)\n")

    # The aggregate comparison over many tracked hosts.
    population = [p for b in blocks for p in b.slash24s]
    hosts = []
    for candidate_block in sorted(blocks, key=lambda b: -b.size)[:20]:
        actives = snapshot.active_in(candidate_block.slash24s[0])
        if actives:
            hosts.append(actives[0])
    comparison = compare_search_strategies(
        internet, blocks, hosts, old_epoch, new_epoch, population, seed=7,
    )
    rows = [
        ["hosts tracked", comparison.searches],
        ["found via block search",
         f"{comparison.block_found}/{comparison.searches}"],
        ["found via population search (same budget)",
         f"{comparison.population_found}/{comparison.searches}"],
        ["mean search space, block",
         f"{comparison.mean_block_addresses:.0f} addresses"],
        ["search space, population",
         f"{comparison.population_addresses} addresses"],
        ["expected speed-up", f"{comparison.expected_speedup:.1f}x"],
    ]
    print(render_table(["quantity", "value"], rows,
                       title="block vs population search"))


if __name__ == "__main__":
    main()
