#!/usr/bin/env python
"""Stratified sampling from Hobbit blocks (Section 7.3, Figure 12).

Internet hosts are diverse even inside one ISP; a representative sample
should cover many host types. Using rDNS patterns as the type proxy,
this example compares a stratified sample (one address per Hobbit
block) against simple random samples of 1x-4x the size.

Run:  python examples/stratified_sampling.py
"""

from repro.aggregation import AggregatedBlock
from repro.analysis import compare_sampling
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.probing import scan
from repro.util import render_table


def main() -> None:
    internet = SimulatedInternet.from_config(tiny_scenario(seed=17))
    snapshot = scan(internet)

    # Use the ground-truth aggregates as the Hobbit blocks of one org.
    target_asn = 65001  # the tiny scenario's residential broadband ISP
    blocks = []
    for index, tb in enumerate(internet.ground_truth.true_blocks()):
        record = internet.geodb.lookup(tb.slash24s[0].network)
        if record and record.asn == target_asn:
            blocks.append(
                AggregatedBlock(
                    block_id=index,
                    lasthop_set=tb.lasthop_router_ids,
                    slash24s=tb.slash24s,
                )
            )
    print(f"{len(blocks)} Hobbit blocks for AS{target_asn}\n")

    comparison = compare_sampling(
        internet, blocks, snapshot, repetitions=25, seed=3,
    )
    rows = [
        [label, f"{value:.2f}"]
        for label, value in comparison.normalized_rows()
    ]
    print(render_table(
        ["method", "distinct rDNS patterns (normalized)"],
        rows, title="Figure 12: sample representativeness",
    ))
    print(
        f"\nstratified sample covers "
        f"{comparison.stratified_population_coverage * 100:.0f}% of the "
        f"{comparison.population_patterns} patterns in the population "
        "(the paper measured 73%)"
    )


if __name__ == "__main__":
    main()
