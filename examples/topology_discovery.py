#!/usr/bin/env python
"""Topology discovery with Hobbit blocks (the Section 7.1 application).

Mapping systems like CAIDA's Ark probe one destination per routed /24.
If many /24s are really one homogeneous block, that wastes probes on
duplicate paths. This example traces every active address in a set of
homogeneous /24s to build the full link ground truth, then compares how
fast two selection strategies discover those links:

* one destination per round from every /24 (the status quo), vs
* one destination per round from every Hobbit block.

Run:  python examples/topology_discovery.py
"""

import random

from repro.aggregation import run_aggregation
from repro.analysis import (
    groups_from_blocks,
    groups_from_slash24s,
    total_links,
)
from repro.analysis.topo_discovery import average_discovery_ratios
from repro.core import TerminationPolicy, run_campaign
from repro.netsim import SimulatedInternet, tiny_scenario
from repro.probing import Prober, enumerate_paths, scan
from repro.util import render_table


def main() -> None:
    internet = SimulatedInternet.from_config(tiny_scenario(seed=11))
    snapshot = scan(internet)
    truth = internet.ground_truth

    # Collect the full-path dataset: MDA towards every active address
    # of 24 homogeneous /24s.
    sample = [
        p for p in snapshot.eligible_slash24s() if truth.is_homogeneous(p)
    ][:24]
    prober = Prober(internet)
    dataset = {}
    for slash24 in sample:
        for dst in snapshot.active_in(slash24)[:24]:
            mp = enumerate_paths(prober, dst, flow_seed=dst & 0xFFFF)
            if mp.reached and mp.routes:
                dataset[dst] = frozenset(mp.routes)
    print(f"dataset: {len(dataset)} destinations, "
          f"{len(total_links(dataset))} distinct links, "
          f"{prober.probes_sent} probes\n")

    # Identify Hobbit blocks covering the sampled /24s.
    campaign = run_campaign(
        internet, TerminationPolicy(), slash24s=sample,
        snapshot=snapshot, seed=2, max_destinations_per_slash24=48,
    )
    outcome = run_aggregation(
        campaign.lasthop_sets(), validate=False, inflation=2.0,
    )
    blocks = [list(block.slash24s) for block in outcome.final_blocks]
    # /24s Hobbit could not place (too few active, silent last hops)
    # still get probed individually.
    covered = {p for members in blocks for p in members}
    blocks += [[p] for p in sample if p not in covered]
    print(f"{len(sample)} /24s form {len(blocks)} Hobbit blocks\n")

    rng = random.Random(5)
    budgets = (1.0, 2.0, 4.0, 8.0)
    block_ratios = average_discovery_ratios(
        dataset, groups_from_blocks(dataset, blocks), len(sample),
        budgets, rng, trials=5,
    )
    slash24_ratios = average_discovery_ratios(
        dataset, groups_from_slash24s(dataset), len(sample),
        budgets, rng, trials=5,
    )

    rows = []
    for budget, rb, r24 in zip(budgets, block_ratios, slash24_ratios):
        rows.append([budget, f"{rb:.3f}", f"{r24:.3f}"])
    print(render_table(
        ["avg destinations per /24", "Hobbit blocks", "per /24"],
        rows,
        title="discovered-links ratio (Figure 11)",
    ))


if __name__ == "__main__":
    main()
